// Serializable compiled-module artifacts for the disk cache tier.
//
// The compiled engine's final form is a closure graph (cops), which
// cannot round-trip through bytes. What can is the stage immediately
// before closures appear: the register-IR instruction stream after
// rir.Lower (or after rir.Compact for the non-lowering engine) and
// before the elision pass — every field of rir.Inst at that point is
// plain data. An artifact is therefore that per-function IR plus
// frame metadata; decoding replays only the cheap back half of the
// pipeline (elide → FuseMem → emit), never validation, flattening,
// building, optimization, or lowering — the passes that dominate
// compile time.
//
// rir.Inst cannot be gob-encoded directly: its elision payloads
// (CheckPlan's LoopRange.Expr) are func-typed, and gob rejects any
// type that reaches a func field even when the pointer is nil. The
// artifact mirrors the pure-data fields into its own instruction
// struct; encoding refuses any instruction carrying post-elision
// state, which pins the clone point at compile time.
package compiled

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"slices"

	"leapsandbounds/internal/core"
	"leapsandbounds/internal/flatten"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/rir"
	"leapsandbounds/internal/wasm"
)

// artifactVersion guards the gob payload shape. Bump on any change to
// ainst/afunc/artifact; a version mismatch decodes as corruption and
// the disk tier recompiles.
const artifactVersion = 1

// ainst mirrors the pure-data fields of rir.Inst (everything the
// pre-elision pipeline writes). Post-elision fields (Unchecked, Chk,
// Fuse, Pair) are deliberately absent: they carry closures and are
// reconstructed by the decode-side elide/FuseMem replay.
type ainst struct {
	Op       wasm.Opcode
	Sub      wasm.SubOpcode
	Shape    rir.Shape
	Dst      int
	A, B, C  int
	AImm     bool
	BImm     bool
	ImmA     uint64
	ImmB     uint64
	Off      uint64
	Tgt      int32
	CarrySrc int
	CarryDst int
	Table    []flatten.BranchTarget
	Fidx     uint32
	ArgBase  int
	NArgs    int8
	Results  int8
	CmpOp    wasm.Opcode
	BrOnTrue bool
	Class    isa.OpClass
	MemAcc   bool
	Dead     bool
	Pure     bool
}

// afunc is one function's artifact.
type afunc struct {
	Name      string
	Type      wasm.FuncType
	NumParams int
	NumLocals int
	FrameSize int
	IR        []ainst
}

// artifact is the gob payload: the module's functions plus the
// codegen flags they were built under (checked at decode so a
// mis-keyed file can never silently produce differently-shaped code).
type artifact struct {
	Version  int
	Optimize bool
	Elision  bool
	Lowered  bool
	Funcs    []afunc
}

// toArtifactIR converts pre-elision IR, refusing instructions that
// carry post-elision state (a non-nil CheckPlan, fused chains, or the
// unchecked flag means the caller cloned after the wrong pass).
func toArtifactIR(ir []rir.Inst) ([]ainst, error) {
	out := make([]ainst, len(ir))
	for i := range ir {
		s := &ir[i]
		if s.Unchecked || s.Chk != nil || s.Fuse != nil || s.Pair != nil {
			return nil, fmt.Errorf("compiled: instruction %d carries post-elision state", i)
		}
		out[i] = ainst{
			Op: s.Op, Sub: s.Sub, Shape: s.Shape,
			Dst: s.Dst, A: s.A, B: s.B, C: s.C,
			AImm: s.AImm, BImm: s.BImm, ImmA: s.ImmA, ImmB: s.ImmB,
			Off: s.Off, Tgt: s.Tgt,
			CarrySrc: s.CarrySrc, CarryDst: s.CarryDst,
			Table: s.Table,
			Fidx:  s.Fidx, ArgBase: s.ArgBase, NArgs: s.NArgs, Results: s.Results,
			CmpOp: s.CmpOp, BrOnTrue: s.BrOnTrue,
			Class: s.Class, MemAcc: s.MemAcc, Dead: s.Dead, Pure: s.Pure,
		}
	}
	return out, nil
}

// fromArtifactIR rebuilds the rir stream.
func fromArtifactIR(in []ainst) []rir.Inst {
	out := make([]rir.Inst, len(in))
	for i := range in {
		s := &in[i]
		out[i] = rir.Inst{
			Op: s.Op, Sub: s.Sub, Shape: s.Shape,
			Dst: s.Dst, A: s.A, B: s.B, C: s.C,
			AImm: s.AImm, BImm: s.BImm, ImmA: s.ImmA, ImmB: s.ImmB,
			Off: s.Off, Tgt: s.Tgt,
			CarrySrc: s.CarrySrc, CarryDst: s.CarryDst,
			Table: s.Table,
			Fidx:  s.Fidx, ArgBase: s.ArgBase, NArgs: s.NArgs, Results: s.Results,
			CmpOp: s.CmpOp, BrOnTrue: s.BrOnTrue,
			Class: s.Class, MemAcc: s.MemAcc, Dead: s.Dead, Pure: s.Pure,
		}
	}
	return out
}

// EncodeArtifact implements core.ArtifactCodec. It serializes the
// retained pre-elision IR of a module this engine family compiled;
// foreign module types (or modules from before IR retention) return
// core.ErrNoArtifact.
func (e *Engine) EncodeArtifact(cm core.CompiledModule) ([]byte, error) {
	tm, ok := cm.(*Module)
	if !ok {
		return nil, core.ErrNoArtifact
	}
	art := artifact{
		Version:  artifactVersion,
		Optimize: e.optimize,
		Elision:  e.elision(),
		Lowered:  e.registerIR(),
	}
	for _, cf := range tm.funcs {
		if cf.preIR == nil && len(cf.code) > 0 {
			return nil, core.ErrNoArtifact
		}
		ir, err := toArtifactIR(cf.preIR)
		if err != nil {
			return nil, err
		}
		art.Funcs = append(art.Funcs, afunc{
			Name:      cf.name,
			Type:      cf.typ,
			NumParams: cf.numParams,
			NumLocals: cf.numLocals,
			FrameSize: cf.frameSize,
			IR:        ir,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&art); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeArtifact implements core.ArtifactCodec: it rebuilds a Module
// from EncodeArtifact bytes by replaying only the post-retention
// pipeline (elide → FuseMem → emit) per function. The source module m
// must be the one the artifact was encoded from (the cache keys by
// content hash); decode validates structural agreement and errors —
// treated as corruption upstream — on any mismatch.
func (e *Engine) DecodeArtifact(m *wasm.Module, data []byte) (core.CompiledModule, error) {
	var art artifact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&art); err != nil {
		return nil, fmt.Errorf("compiled: artifact decode: %w", err)
	}
	if art.Version != artifactVersion {
		return nil, fmt.Errorf("compiled: artifact version %d, want %d", art.Version, artifactVersion)
	}
	if art.Optimize != e.optimize || art.Elision != e.elision() || art.Lowered != e.registerIR() {
		return nil, fmt.Errorf("compiled: artifact codegen flags (opt=%v elide=%v rir=%v) do not match engine (opt=%v elide=%v rir=%v)",
			art.Optimize, art.Elision, art.Lowered, e.optimize, e.elision(), e.registerIR())
	}
	if len(art.Funcs) != len(m.Code) {
		return nil, fmt.Errorf("compiled: artifact has %d functions, module has %d", len(art.Funcs), len(m.Code))
	}
	cm := &Module{engine: e, wasm: m}
	for i := range art.Funcs {
		af := &art.Funcs[i]
		pre := fromArtifactIR(af.IR)
		// elide rewrites instructions in place before inserting guards;
		// work on a copy so the retained pre-elision IR stays re-encodable.
		ir := slices.Clone(pre)
		if e.elision() {
			ir = elide(ir, af.NumLocals)
		}
		if e.registerIR() {
			ir, _ = rir.FuseMem(ir)
		}
		code, classes, memAcc, elided, err := emit(ir)
		if err != nil {
			return nil, fmt.Errorf("compiled: artifact function %d: %w", i, err)
		}
		cm.funcs = append(cm.funcs, &cfunc{
			name:      af.Name,
			typ:       af.Type,
			numParams: af.NumParams,
			numLocals: af.NumLocals,
			frameSize: af.FrameSize,
			code:      code,
			classes:   classes,
			memAcc:    memAcc,
			elided:    elided,
			index:     uint32(m.NumImportedFuncs() + i),
			preIR:     pre,
		})
	}
	return cm, nil
}

// Interface conformance.
var _ core.ArtifactCodec = (*Engine)(nil)
