// Package compiled implements the closure-compiling ahead-of-time
// engines modelling WAVM (optimizing) and Wasmtime (single-pass
// baseline) from the paper. Function bodies are lowered through the
// flatten package to a register-slot IR — every operand of the wasm
// stack machine has a statically known frame slot — and each IR
// operation is compiled to a Go closure over fixed slot indices.
// Execution dispatches directly over the closure array with no
// opcode decoding, the closure-level analog of template JIT code.
//
// The WAVM engine additionally runs an optimizer over the IR:
// constant folding, copy propagation of locals and constants into
// consumers, store-to-local forwarding and compare-branch fusion,
// which removes a significant fraction of executed operations —
// the mechanical analog of LLVM's better code generation.
package compiled

import (
	"fmt"

	"leapsandbounds/internal/flatten"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/wasm"
)

// shape classifies IR operations for emission.
type shape uint8

const (
	shConst     shape = iota // dst = immA
	shMove                   // dst = slot a
	shUn                     // dst = unop(a)
	shBin                    // dst = binop(a, b)
	shSelect                 // dst = cond(c) ? a : b
	shLoad                   // dst = mem[a + off]
	shStore                  // mem[a + off] = b
	shJump                   // unconditional branch (with optional carried value)
	shIfFalse                // branch when a == 0
	shBranchIf               // branch when a != 0 (with optional carried value)
	shCmpBranch              // fused compare + branch
	shBrTable                // indexed branch
	shReturn                 // function return
	shCall                   // direct call
	shCallInd                // indirect call
	shGlobalGet              // dst = globals[idx]
	shGlobalSet              // globals[idx] = a
	shMemSize                // dst = memory.size
	shMemGrow                // dst = memory.grow(a)
	shMemCopy                // memory.copy(a, b, c)
	shMemFill                // memory.fill(a, b, c)
	shTruncSat               // dst = truncsat(a)
	shUnreachable
	shNop        // deleted/padding
	shRangeCheck // bounds-check elision guard; branches to tgt on failure
)

// sop is one slot-IR operation. Slot indices are frame-relative:
// locals occupy [0, numLocals), wasm operand height h maps to slot
// numLocals + h.
type sop struct {
	op    wasm.Opcode
	sub   wasm.SubOpcode
	shape shape
	dst   int
	a, b  int // source slots
	c     int // third source (select condition, memcopy/fill length)
	aImm  bool
	bImm  bool
	immA  uint64
	immB  uint64
	off   uint64 // static memory offset
	// branch metadata
	tgt      int32
	carrySrc int // slot carried across the branch (-1 when none)
	carryDst int
	table    []flatten.BranchTarget
	// call metadata
	fidx    uint32 // function index / type index
	argBase int    // first argument slot
	results int8
	// compare-branch fusion: the fused compare opcode and whether
	// the branch fires when the compare is true.
	cmpOp    wasm.Opcode
	brOnTrue bool

	class  isa.OpClass
	memAcc bool // charges the software bounds-check class
	dead   bool

	// bounds-check elision (bce.go)
	pure      bool       // load/store address is derivable from locals+consts
	unchecked bool       // load/store proven in-range; emit the no-check variant
	chk       *checkPlan // shRangeCheck payload
	fuse      []sop      // address-mode chain folded into an unchecked access
}

// buildIR lowers a flattened function to slot IR (one sop per
// flatten.Instr, same pc numbering so branch targets carry over).
func buildIR(ff *flatten.Func) ([]sop, error) {
	nl := ff.NumLocals
	slot := func(h int32) int { return nl + int(h) }
	ir := make([]sop, 0, len(ff.Code))

	for pc := range ff.Code {
		in := &ff.Code[pc]
		s := sop{op: in.Op, sub: in.Sub, class: in.Class, carrySrc: -1}
		h := in.H
		switch in.Op {
		case flatten.OpJump:
			s.shape = shJump
			s.tgt = in.Tgt
			if in.Arity > 0 {
				s.carrySrc = slot(h - 1)
				s.carryDst = slot(in.PopTo)
			}
		case flatten.OpIfFalse:
			s.shape = shIfFalse
			s.a = slot(h - 1)
			s.tgt = in.Tgt
		case flatten.OpBranchIf:
			s.shape = shBranchIf
			s.a = slot(h - 1)
			s.tgt = in.Tgt
			if in.Arity > 0 {
				s.carrySrc = slot(h - 2)
				s.carryDst = slot(in.PopTo)
			}
		case wasm.OpBrTable:
			s.shape = shBrTable
			s.a = slot(h - 1)
			s.table = make([]flatten.BranchTarget, len(in.Table))
			for i, bt := range in.Table {
				s.table[i] = flatten.BranchTarget{
					Tgt:   bt.Tgt,
					PopTo: int32(slot(bt.PopTo)), // pre-translate to slots
					Arity: bt.Arity,
				}
			}
			s.carrySrc = slot(h - 2) // value below the index, if carried
		case flatten.OpReturnEnd:
			s.shape = shReturn
			if in.Arity > 0 {
				s.carrySrc = slot(h - 1)
			}
		case wasm.OpUnreachable:
			s.shape = shUnreachable
		case wasm.OpCall:
			s.shape = shCall
			s.fidx = uint32(in.A)
			s.argBase = slot(in.PopTo)
			s.results = in.Arity
		case wasm.OpCallIndirect:
			s.shape = shCallInd
			s.fidx = uint32(in.A) // type index
			s.a = slot(h - 1)     // table index operand
			s.argBase = slot(in.PopTo)
			s.results = in.Arity
		case wasm.OpDrop:
			s.shape = shNop
			s.dead = true
		case wasm.OpSelect:
			s.shape = shSelect
			s.c = slot(h - 1)
			s.b = slot(h - 2)
			s.a = slot(h - 3)
			s.dst = slot(h - 3)
		case wasm.OpLocalGet:
			s.shape = shMove
			s.a = int(in.A)
			s.dst = slot(h)
		case wasm.OpLocalSet:
			s.shape = shMove
			s.a = slot(h - 1)
			s.dst = int(in.A)
		case wasm.OpLocalTee:
			s.shape = shMove
			s.a = slot(h - 1)
			s.dst = int(in.A)
		case wasm.OpGlobalGet:
			s.shape = shGlobalGet
			s.fidx = uint32(in.A)
			s.dst = slot(h)
		case wasm.OpGlobalSet:
			s.shape = shGlobalSet
			s.fidx = uint32(in.A)
			s.a = slot(h - 1)
		case wasm.OpMemorySize:
			s.shape = shMemSize
			s.dst = slot(h)
		case wasm.OpMemoryGrow:
			s.shape = shMemGrow
			s.a = slot(h - 1)
			s.dst = slot(h - 1)
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			s.shape = shConst
			s.immA = in.A
			s.dst = slot(h)
		case wasm.OpPrefix:
			switch in.Sub {
			case wasm.SubMemoryCopy:
				s.shape = shMemCopy
				s.a = slot(h - 3)
				s.b = slot(h - 2)
				s.c = slot(h - 1)
			case wasm.SubMemoryFill:
				s.shape = shMemFill
				s.a = slot(h - 3)
				s.b = slot(h - 2)
				s.c = slot(h - 1)
			default:
				s.shape = shTruncSat
				s.a = slot(h - 1)
				s.dst = slot(h - 1)
			}
		default:
			if in.Op.IsLoad() {
				s.shape = shLoad
				s.a = slot(h - 1)
				s.dst = slot(h - 1)
				s.off = in.B
				s.memAcc = true
				s.pure = in.PureAddr
			} else if in.Op.IsStore() {
				s.shape = shStore
				s.a = slot(h - 2) // address
				s.b = slot(h - 1) // value
				s.off = in.B
				s.memAcc = true
				s.pure = in.PureAddr
			} else {
				_, delta, ok := flatten.Classify(in.Op)
				if !ok {
					return nil, fmt.Errorf("compiled: unsupported opcode %s", in.Op)
				}
				switch delta {
				case 0: // unary
					s.shape = shUn
					s.a = slot(h - 1)
					s.dst = slot(h - 1)
				case -1: // binary
					s.shape = shBin
					s.a = slot(h - 2)
					s.b = slot(h - 1)
					s.dst = slot(h - 2)
				default:
					return nil, fmt.Errorf("compiled: unexpected stack delta for %s", in.Op)
				}
			}
		}
		ir = append(ir, s)
	}
	return ir, nil
}
