package compiled_test

import (
	"bytes"
	"errors"
	"testing"

	"leapsandbounds/internal/compiled"
	"leapsandbounds/internal/core"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/wasm"
	g "leapsandbounds/internal/wasmgen"
)

// artifactModule has memory traffic, a loop, a helper call, and a
// trap-reachable tail so the round trip covers checked accesses,
// branch tables from For, and the call path.
func artifactModule(t *testing.T) *wasm.Module {
	t.Helper()
	mb := g.NewModule()
	mb.Memory(1, 4)
	h := mb.Func("mix", wasm.I64)
	hv := h.ParamI64("v")
	h.Body(g.Return(g.Mul(g.Xor(g.Get(hv), g.I64(0x7f4a7c15)), g.I64(0x5851f42d4c957f2d))))
	f := mb.Func("run", wasm.I64)
	x := f.ParamI64("x")
	i := f.LocalI32("i")
	acc := f.LocalI64("acc")
	f.Body(
		g.For(i, g.I32(0), g.I32(128),
			g.StoreI64(g.Mul(g.Get(i), g.I32(8)), 16,
				g.Call(h, g.Add(g.Get(x), g.I64FromI32U(g.Get(i))))),
		),
		g.For(i, g.I32(0), g.I32(128),
			g.Set(acc, g.Add(g.Get(acc), g.LoadI64(g.Mul(g.Get(i), g.I32(8)), 16))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("run", f)
	mb.Export("mix", h)
	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// compiledEngines are the engine configurations whose artifacts must
// round-trip: both constructors plus the ablated codegen corners.
func compiledEngines() map[string]func() *compiled.Engine {
	return map[string]func() *compiled.Engine{
		"wavm":     compiled.NewWAVM,
		"wasmtime": compiled.NewWasmtime,
		"wavm-noelide": func() *compiled.Engine {
			e := compiled.NewWAVM()
			e.SetCodegen(core.Codegen{RegisterIR: true})
			return e
		},
		"wavm-stackir": func() *compiled.Engine {
			e := compiled.NewWAVM()
			e.SetCodegen(core.Codegen{BoundsElision: true})
			return e
		},
		"wavm-baseline": func() *compiled.Engine { e := compiled.NewWAVM(); e.SetCodegen(core.Codegen{}); return e },
	}
}

// TestArtifactRoundTrip pins the disk-tier contract for every engine
// configuration: encode(compile(m)) must decode to a module that is
// behaviourally identical under every strategy, and the decoded
// module must re-encode to the same bytes (it keeps its pre-elision
// IR, so a process that loaded from disk can still publish).
func TestArtifactRoundTrip(t *testing.T) {
	m := artifactModule(t)
	for name, mk := range compiledEngines() {
		t.Run(name, func(t *testing.T) {
			eng := mk()
			eng.SetCache(nil)
			cm, err := eng.CompileModule(m)
			if err != nil {
				t.Fatal(err)
			}
			data, err := eng.EncodeArtifact(cm)
			if err != nil {
				t.Fatal(err)
			}
			dm, err := eng.DecodeArtifact(m, data)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range mem.Strategies() {
				want := invoke1(t, cm, s, "run", 7)
				got := invoke1(t, dm, s, "run", 7)
				if got != want {
					t.Fatalf("strategy %v: decoded %#x, compiled %#x", s, got, want)
				}
			}
			re, err := eng.EncodeArtifact(dm)
			if err != nil {
				t.Fatalf("re-encode of decoded module: %v", err)
			}
			if !bytes.Equal(data, re) {
				t.Fatal("decoded module re-encodes differently")
			}
		})
	}
}

func invoke1(t *testing.T, cm core.CompiledModule, s mem.Strategy, export string, arg uint64) uint64 {
	t.Helper()
	inst, err := cm.Instantiate(core.Config{Strategy: s, Profile: isa.X86_64()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	res, err := inst.Invoke(export, arg)
	if err != nil {
		t.Fatal(err)
	}
	return res[0]
}

// TestArtifactRejectsMismatchedEngine: an artifact encoded under one
// codegen configuration must not decode under another — the flag echo
// in the payload catches what a mis-keyed file name would let through.
func TestArtifactRejectsMismatchedEngine(t *testing.T) {
	m := artifactModule(t)
	eng := compiled.NewWAVM()
	eng.SetCache(nil)
	cm, err := eng.CompileModule(m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := eng.EncodeArtifact(cm)
	if err != nil {
		t.Fatal(err)
	}
	other := compiled.NewWasmtime()
	if _, err := other.DecodeArtifact(m, data); err == nil {
		t.Fatal("wasmtime decoded a wavm artifact")
	}
	garbled := append([]byte(nil), data...)
	garbled[0] ^= 0xff
	if _, err := eng.DecodeArtifact(m, garbled); err == nil {
		t.Fatal("garbled payload decoded")
	}
}

// TestArtifactForeignModule: the codec refuses modules it did not
// compile with the ErrNoArtifact sentinel (the cache then skips the
// disk store rather than treating it as an error).
func TestArtifactForeignModule(t *testing.T) {
	eng := compiled.NewWAVM()
	if _, err := eng.EncodeArtifact(foreignModule{}); !errors.Is(err, core.ErrNoArtifact) {
		t.Fatalf("err = %v, want ErrNoArtifact", err)
	}
}

type foreignModule struct{}

func (foreignModule) Instantiate(core.Config, core.Imports) (core.Instance, error) {
	return nil, errors.New("foreign")
}
