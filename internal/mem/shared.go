// Wasm-threads-style atomic accessors for shared linear memory.
//
// The threads proposal gives every thread of an agent the same linear
// memory and adds atomic loads, stores, and read-modify-write ops
// over it. This file implements that accessor family directly on the
// backing mapping with Go's sync/atomic over the arena bytes:
//
//   - Atomic accesses trap on unaligned addresses (trap.UnalignedAtomic)
//     instead of tearing, exactly as the proposal specifies — the
//     alignment check happens before the bounds check, matching the
//     validation order production engines use.
//   - Bounds checking goes through the same fast-path watermark
//     compare as the plain accessors, so each strategy's cost model
//     (and clamp's per-access redirect) applies unchanged. Clamp
//     redirects preserve the width's alignment because size and
//     watermark are always page-multiples.
//   - The accessors are safe under concurrent use from any number of
//     instances attached to one shared Memory: the fast-path fields
//     are atomics, grow publishes commit-then-length (see Grow), and
//     the data access itself is a single aligned atomic instruction.
//
// Plain (non-atomic) LoadU*/StoreU* remain valid on shared memories
// for addresses the guest program keeps thread-disjoint — the usual
// data/race contract of shared-memory wasm.
package mem

import (
	"sync/atomic"
	"unsafe"

	"leapsandbounds/internal/trap"
)

// checkAtomic validates alignment and bounds for a width-byte atomic
// access and returns the effective address (clamp may redirect).
func (m *Memory) checkAtomic(addr, width uint64) uint64 {
	if addr&(width-1) != 0 {
		trap.Throwf(trap.UnalignedAtomic, "atomic %d-byte access at %#x", width, addr)
	}
	if addr+width > m.fastLimit.Load() {
		addr = m.slow(addr, width, true)
	}
	return addr
}

// AtomicLoadU32 performs an i32.atomic.load.
func (m *Memory) AtomicLoadU32(addr uint64) uint32 {
	addr = m.checkAtomic(addr, 4)
	return (*atomic.Uint32)(unsafe.Add(m.ptr, uintptr(addr))).Load()
}

// AtomicStoreU32 performs an i32.atomic.store.
func (m *Memory) AtomicStoreU32(addr uint64, v uint32) {
	addr = m.checkAtomic(addr, 4)
	(*atomic.Uint32)(unsafe.Add(m.ptr, uintptr(addr))).Store(v)
}

// AtomicAddU32 performs an i32.atomic.rmw.add, returning the old value.
func (m *Memory) AtomicAddU32(addr uint64, delta uint32) uint32 {
	addr = m.checkAtomic(addr, 4)
	return (*atomic.Uint32)(unsafe.Add(m.ptr, uintptr(addr))).Add(delta) - delta
}

// AtomicCasU32 performs an i32.atomic.rmw.cmpxchg, returning the
// value observed before the operation (the wasm semantics: old on
// success, current on failure).
func (m *Memory) AtomicCasU32(addr uint64, old, new uint32) uint32 {
	addr = m.checkAtomic(addr, 4)
	a := (*atomic.Uint32)(unsafe.Add(m.ptr, uintptr(addr)))
	for {
		cur := a.Load()
		if cur != old {
			return cur
		}
		if a.CompareAndSwap(old, new) {
			return old
		}
	}
}

// AtomicLoadU64 performs an i64.atomic.load.
func (m *Memory) AtomicLoadU64(addr uint64) uint64 {
	addr = m.checkAtomic(addr, 8)
	return (*atomic.Uint64)(unsafe.Add(m.ptr, uintptr(addr))).Load()
}

// AtomicStoreU64 performs an i64.atomic.store.
func (m *Memory) AtomicStoreU64(addr uint64, v uint64) {
	addr = m.checkAtomic(addr, 8)
	(*atomic.Uint64)(unsafe.Add(m.ptr, uintptr(addr))).Store(v)
}

// AtomicAddU64 performs an i64.atomic.rmw.add, returning the old value.
func (m *Memory) AtomicAddU64(addr uint64, delta uint64) uint64 {
	addr = m.checkAtomic(addr, 8)
	return (*atomic.Uint64)(unsafe.Add(m.ptr, uintptr(addr))).Add(delta) - delta
}

// AtomicCasU64 performs an i64.atomic.rmw.cmpxchg with the same
// observed-value return contract as AtomicCasU32.
func (m *Memory) AtomicCasU64(addr uint64, old, new uint64) uint64 {
	addr = m.checkAtomic(addr, 8)
	a := (*atomic.Uint64)(unsafe.Add(m.ptr, uintptr(addr)))
	for {
		cur := a.Load()
		if cur != old {
			return cur
		}
		if a.CompareAndSwap(old, new) {
			return old
		}
	}
}
