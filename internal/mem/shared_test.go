package mem

import (
	"sync"
	"sync/atomic"
	"testing"

	"leapsandbounds/internal/trap"
	"leapsandbounds/internal/wasm"
)

func newSharedMem(t *testing.T, s Strategy, minPages, maxPages uint32) *Memory {
	t.Helper()
	cfg := Config{Strategy: s, AS: testAS(), MinPages: minPages, MaxPages: maxPages, Shared: true}
	if s == Uffd {
		cfg.Pool = NewArenaPool()
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestSharedAtomicAccessors(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newSharedMem(t, s, 2, 8)
			m.AtomicStoreU32(64, 0xdeadbeef)
			if got := m.AtomicLoadU32(64); got != 0xdeadbeef {
				t.Errorf("u32: %#x", got)
			}
			if old := m.AtomicAddU32(64, 0x11); old != 0xdeadbeef {
				t.Errorf("add old: %#x", old)
			}
			if old := m.AtomicCasU32(64, 0xdeadbf00, 7); old != 0xdeadbf00 {
				t.Errorf("cas old: %#x", old)
			}
			if got := m.AtomicLoadU32(64); got != 7 {
				t.Errorf("after cas: %#x", got)
			}
			m.AtomicStoreU64(128, 0x0123456789abcdef)
			if old := m.AtomicAddU64(128, 1); old != 0x0123456789abcdef {
				t.Errorf("add64 old: %#x", old)
			}
			if old := m.AtomicCasU64(128, 0x0123456789abcdf0, 42); old != 0x0123456789abcdf0 {
				t.Errorf("cas64 old: %#x", old)
			}
			if got := m.AtomicLoadU64(128); got != 42 {
				t.Errorf("after cas64: %#x", got)
			}
		})
	}
}

func TestSharedAtomicUnalignedTraps(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newSharedMem(t, s, 1, 4)
			tr := catchTrap(func() { m.AtomicLoadU32(2) })
			if tr == nil || tr.Kind != trap.UnalignedAtomic {
				t.Fatalf("u32 at 2: trap %v, want UnalignedAtomic", tr)
			}
			tr = catchTrap(func() { m.AtomicStoreU64(12, 0) })
			if tr == nil || tr.Kind != trap.UnalignedAtomic {
				t.Fatalf("u64 at 12: trap %v, want UnalignedAtomic", tr)
			}
		})
	}
}

// TestSharedGrowUnderTraffic is the mem-level half of the tentpole
// scenario: worker goroutines hammer disjoint slots (plain accessors)
// and one contended counter (atomic accessors) while the main thread
// grows the memory to its max one page at a time, writing a probe
// into every freshly published page. All strategies must neither trap
// nor lose a write.
func TestSharedGrowUnderTraffic(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			const workers = 4
			const spins = 300
			m := newSharedMem(t, s, 1, 16)

			var wg sync.WaitGroup
			var stop atomic.Bool
			errs := make([]error, workers)
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							if tr, ok := r.(*trap.Trap); ok {
								errs[w] = tr
								return
							}
							panic(r)
						}
					}()
					base := uint64(w) * 512
					for i := 0; i < spins; i++ {
						v := uint64(w)<<32 | uint64(i)
						m.StoreU64(base, v)
						if got := m.LoadU64(base); got != v {
							t.Errorf("worker %d: read back %#x, want %#x", w, got, v)
							return
						}
						m.AtomicAddU64(4096, 1)
						// Chase the published end: a per-worker slot on the
						// youngest page, racing the grower's publication
						// (disjoint across workers — plain stores at a shared
						// address would be a real data race).
						end := m.SizeBytes()
						m.StoreU64(end-64+8*uint64(w), v)
					}
					stop.Store(true)
				}(w)
			}

			grows := 0
			for m.SizePages() < m.MaxPages() {
				old := m.Grow(1)
				if old < 0 {
					t.Fatalf("grow refused at %d pages (max %d)", m.SizePages(), m.MaxPages())
				}
				grows++
				// Probe the freshly published page immediately.
				probe := uint64(old)*wasm.PageSize + 16
				m.StoreU64(probe, uint64(old))
				if got := m.LoadU64(probe); got != uint64(old) {
					t.Fatalf("fresh page %d: read back %#x", old, got)
				}
			}
			if m.Grow(1) != -1 {
				t.Fatal("grow past max succeeded")
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Errorf("worker %d trapped: %v", w, err)
				}
			}
			if got := m.AtomicLoadU64(4096); got != workers*spins {
				t.Errorf("contended counter: %d, want %d", got, workers*spins)
			}
			if got := m.Generation(); got != uint64(grows) {
				t.Errorf("generation %d after %d grows", got, grows)
			}
			if m.SizePages() != m.MaxPages() {
				t.Errorf("final size %d pages, want max %d", m.SizePages(), m.MaxPages())
			}
		})
	}
}

// TestSharedConcurrentGrow: racing growers serialize on the grow
// mutex; every successful grow returns a distinct old size and the
// total adds up exactly.
func TestSharedConcurrentGrow(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			const growers = 8
			m := newSharedMem(t, s, 1, 1+growers)
			olds := make(chan int32, growers)
			var wg sync.WaitGroup
			wg.Add(growers)
			for g := 0; g < growers; g++ {
				go func() {
					defer wg.Done()
					olds <- m.Grow(1)
				}()
			}
			wg.Wait()
			close(olds)
			seen := map[int32]bool{}
			for old := range olds {
				if old < 0 {
					t.Fatal("grow within max refused")
				}
				if seen[old] {
					t.Fatalf("two grows returned old size %d", old)
				}
				seen[old] = true
			}
			if m.SizePages() != 1+growers {
				t.Fatalf("final size %d pages, want %d", m.SizePages(), 1+growers)
			}
		})
	}
}

func TestSharedSnapshotRefused(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newSharedMem(t, s, 1, 4)
			if _, err := m.Snapshot(); err == nil {
				t.Fatal("snapshot of a shared memory succeeded")
			}
		})
	}
}
