package mem

import (
	"sync"
	"sync/atomic"

	"leapsandbounds/internal/vmm"
)

// uffdServer models userfaultfd's poll-based delivery mode: a
// dedicated handler thread reads fault events from the userfault
// file descriptor and resolves them, so every fault costs a
// round-trip to another thread. The paper uses the SIGBUS mode
// precisely because it avoids these context switches (§2.3.1,
// footnote 2); this server exists to make that choice measurable
// (see the uffd-delivery ablation).
type uffdServer struct {
	reqs     chan uffdReq
	stop     chan struct{}
	done     chan struct{} // closed when the handler goroutine exits
	started  sync.Once
	stopped  sync.Once
	launched atomic.Bool // true once the handler goroutine exists
	pool     sync.Pool   // of chan error
}

type uffdReq struct {
	mapping *vmm.Mapping
	off     uint64
	length  uint64
	done    chan error
}

func newUffdServer() *uffdServer {
	s := &uffdServer{
		reqs: make(chan uffdReq),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.pool.New = func() any { return make(chan error, 1) }
	return s
}

// start launches the handler thread on first use.
func (s *uffdServer) start() {
	s.started.Do(func() {
		s.launched.Store(true)
		go func() {
			defer close(s.done)
			for {
				select {
				case <-s.stop:
					return
				case req := <-s.reqs:
					req.done <- req.mapping.UffdZeroPages(req.off, req.length)
				}
			}
		}()
	})
}

// resolve requests population of [off, off+length) and blocks until
// the handler thread has served it — the poll-mode round trip.
func (s *uffdServer) resolve(m *vmm.Mapping, off, length uint64) error {
	s.start()
	done := s.pool.Get().(chan error)
	select {
	case s.reqs <- uffdReq{mapping: m, off: off, length: length, done: done}:
	case <-s.stop:
		// Server shut down underneath us: resolve inline.
		s.pool.Put(done)
		return m.UffdZeroPages(off, length)
	}
	err := <-done
	s.pool.Put(done)
	return err
}

// close stops the handler thread and joins it. The join matters for
// metric correctness: the handler mutates registry counters (page
// commits via UffdZeroPages), so a snapshot taken after close must
// not race a still-draining handler and under-count.
func (s *uffdServer) close() {
	s.stopped.Do(func() {
		close(s.stop)
		if s.launched.Load() {
			<-s.done
		}
	})
}
