package mem

import (
	"testing"

	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// forkCfg builds a fork Config matching the template's strategy on a
// given address space.
func forkCfg(s Strategy, as *vmm.AddressSpace, pool *ArenaPool) Config {
	cfg := Config{Strategy: s, AS: as}
	if s == Uffd {
		cfg.Pool = pool
	}
	return cfg
}

func TestForkPreservesContentsAndGrowState(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			as := testAS()
			var pool *ArenaPool
			cfg := Config{Strategy: s, AS: as, MinPages: 2, MaxPages: 16}
			if s == Uffd {
				pool = NewArenaPool()
				cfg.Pool = pool
			}
			tmpl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the template: write a pattern, grow, write past the
			// original limit so the snapshot captures grow state too.
			for a := uint64(0); a < 256; a += 8 {
				tmpl.StoreU64(a, a^0xdeadbeef)
			}
			if tmpl.Grow(3) < 0 {
				t.Fatal("grow failed")
			}
			grownAddr := uint64(4 * wasm.PageSize)
			tmpl.StoreU64(grownAddr, 0x1234)

			snap, err := tmpl.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Template keeps running after the snapshot; later writes
			// must not leak into forks.
			tmpl.StoreU64(0, 0xffff)
			if err := tmpl.Close(); err != nil {
				t.Fatal(err)
			}

			fork, err := NewFromSnapshot(forkCfg(s, as, pool), snap)
			if err != nil {
				t.Fatal(err)
			}
			defer fork.Close()
			if fork.SizePages() != 5 {
				t.Errorf("fork size %d pages, want 5 (grown template)", fork.SizePages())
			}
			if got := fork.LoadU64(0); got != 0^0xdeadbeef {
				t.Errorf("fork[0] = %#x, want %#x (pre-snapshot value)", got, uint64(0xdeadbeef))
			}
			for a := uint64(8); a < 256; a += 8 {
				if got := fork.LoadU64(a); got != a^0xdeadbeef {
					t.Fatalf("fork[%d] = %#x, want %#x", a, got, a^0xdeadbeef)
				}
			}
			if got := fork.LoadU64(grownAddr); got != 0x1234 {
				t.Errorf("fork[grown] = %#x, want 0x1234", got)
			}
			// The fork can keep growing from the template's size.
			if fork.Grow(2) != 5 {
				t.Error("fork grow returned wrong previous size")
			}
			if got := fork.LoadU64(uint64(6 * wasm.PageSize)); got != 0 {
				t.Errorf("fresh fork page = %#x, want 0", got)
			}

			// Forks are independent of each other.
			fork2, err := NewFromSnapshot(forkCfg(s, as, pool), snap)
			if err != nil {
				t.Fatal(err)
			}
			defer fork2.Close()
			fork.StoreU64(16, 0x42)
			if got := fork2.LoadU64(16); got != 16^0xdeadbeef {
				t.Errorf("fork write visible in sibling: %#x", got)
			}
		})
	}
}

func TestForkSnapshotOfForkChains(t *testing.T) {
	as := testAS()
	cfg := Config{Strategy: Trap, AS: as, MinPages: 1, MaxPages: 8}
	tmpl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tmpl.Close()
	tmpl.StoreU64(0, 1)
	snap, err := tmpl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NewFromSnapshot(Config{Strategy: Trap, AS: as}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f1.StoreU64(8, 2)
	snap2, err := f1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFromSnapshot(Config{Strategy: Trap, AS: as}, snap2)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.LoadU64(0) != 1 || f2.LoadU64(8) != 2 {
		t.Error("re-snapshotted fork lost state")
	}
}

func TestForkCrossStrategy(t *testing.T) {
	// A snapshot is strategy-agnostic: a trap template can seed an
	// mprotect fork and vice versa (the serve driver relies on this
	// being impossible to get wrong, not on using it).
	as := testAS()
	tmpl, err := New(Config{Strategy: Mprotect, AS: as, MinPages: 1, MaxPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tmpl.Close()
	tmpl.StoreU32(100, 7)
	snap, err := tmpl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := NewFromSnapshot(Config{Strategy: Trap, AS: as}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()
	if fork.Strategy() != Trap || fork.LoadU32(100) != 7 {
		t.Error("cross-strategy fork wrong")
	}
}

func TestForkOutOfBoundsMatchesFresh(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			as := testAS()
			var pool *ArenaPool
			cfg := Config{Strategy: s, AS: as, MinPages: 1, MaxPages: 2}
			if s == Uffd {
				pool = NewArenaPool()
				cfg.Pool = pool
			}
			tmpl, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer tmpl.Close()
			snap, err := tmpl.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			fork, err := NewFromSnapshot(forkCfg(s, as, pool), snap)
			if err != nil {
				t.Fatal(err)
			}
			defer fork.Close()
			oob := uint64(wasm.PageSize) // one past the 1-page size
			fresh := catchTrap(func() { tmpl.LoadU64(oob) })
			forked := catchTrap(func() { fork.LoadU64(oob) })
			if (fresh == nil) != (forked == nil) {
				t.Fatalf("trap mismatch: fresh=%v fork=%v", fresh, forked)
			}
			if fresh != nil && fresh.Kind != forked.Kind {
				t.Errorf("trap kind mismatch: fresh=%v fork=%v", fresh.Kind, forked.Kind)
			}
		})
	}
}

// TestForkSharesPoolPollServer is the forked-mapping companion of the
// PR 1 one-pool regression test: a pooled uffd fork in poll mode must
// register with the process pool's existing handler thread, never
// spawn a second poller.
func TestForkSharesPoolPollServer(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	defer pool.Drain()
	tmpl, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool, UffdPoll: true})
	if err != nil {
		t.Fatal(err)
	}
	tmpl.StoreU64(0, 9)
	if tmpl.poll != pool.pollServer {
		t.Fatal("template did not adopt the pool's poll server")
	}
	snap, err := tmpl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		fork, err := NewFromSnapshot(Config{Strategy: Uffd, AS: as, Pool: pool, UffdPoll: true}, snap)
		if err != nil {
			t.Fatal(err)
		}
		if fork.poll != pool.pollServer {
			t.Fatalf("fork %d spawned its own poll server", i)
		}
		// The fault must round-trip through the shared poller and
		// still install template content.
		if got := fork.LoadU64(0); got != 9 {
			t.Fatalf("fork %d poll-mode fault returned %#x, want 9", i, got)
		}
		if err := fork.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolPutClearsForkSource(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	defer pool.Drain()
	tmpl, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	tmpl.StoreU64(0, 0x77)
	snap, err := tmpl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tmpl.Close(); err != nil {
		t.Fatal(err)
	}
	fork, err := NewFromSnapshot(Config{Strategy: Uffd, AS: as, Pool: pool}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if fork.mapping.Source() == nil {
		t.Fatal("fork arena has no source")
	}
	if got := fork.LoadU64(0); got != 0x77 {
		t.Fatalf("fork content %#x, want 0x77", got)
	}
	if err := fork.Close(); err != nil {
		t.Fatal(err)
	}
	// The recycled arena must be detached from the template image and
	// hand out zeros again.
	fresh, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.mapping.Source() != nil {
		t.Error("recycled arena still carries the fork's source")
	}
	if got := fresh.LoadU64(0); got != 0 {
		t.Errorf("recycled arena leaked template content: %#x", got)
	}
	if st := pool.Stats(); st.Reused == 0 {
		t.Error("fresh instance did not reuse the fork's arena")
	}
}

func TestForkSnapshotClosedMemoryFails(t *testing.T) {
	m := newMem(t, Trap, 1, 2)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Error("snapshot of closed memory succeeded")
	}
}
