// Package mem implements WebAssembly linear memory with the five
// bounds-checking strategies evaluated by the paper (§3.1):
//
//	none      entire addressable window mapped read-write, no checks
//	clamp     out-of-bounds addresses clamped to the memory end
//	trap      explicit compare-and-trap on every access
//	mprotect  PROT_NONE reservation; faults resolved by mprotect(2)
//	          under the process-wide mmap lock
//	uffd      userfaultfd-registered reservation; faults resolved by
//	          lock-free per-page population, with arenas recycled
//	          through a hazard-pointer pool
//
// Engines funnel every load and store through a Memory. The fast
// path for the virtual-memory strategies is a single watermark
// compare (the simulator's stand-in for the hardware MMU, which
// performs this check for free on real silicon); the software
// strategies add their explicit check sequence on top, and the
// engines charge the corresponding cycle-model cost.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"leapsandbounds/internal/faultinject"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/trap"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// Strategy selects a bounds-checking mechanism.
type Strategy uint8

// The five strategies, in the paper's order.
const (
	None Strategy = iota
	Clamp
	Trap
	Mprotect
	Uffd
)

var strategyNames = [...]string{"none", "clamp", "trap", "mprotect", "uffd"}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", uint8(s))
}

// MarshalText encodes the strategy by name (for JSON results).
func (s Strategy) MarshalText() ([]byte, error) {
	return []byte(s.String()), nil
}

// UnmarshalText decodes a strategy name.
func (s *Strategy) UnmarshalText(text []byte) error {
	v, err := ParseStrategy(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseStrategy resolves a strategy name.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("mem: unknown bounds-checking strategy %q", name)
}

// Strategies lists all strategies in paper order.
func Strategies() []Strategy { return []Strategy{None, Clamp, Trap, Mprotect, Uffd} }

// IsSoftware reports whether the strategy inserts explicit check
// code at every access (clamp, trap).
func (s Strategy) IsSoftware() bool { return s == Clamp || s == Trap }

// Reserve is the virtual reservation per memory: the full 8 GiB
// window addressable by base+offset arithmetic on 32-bit operands
// (paper §2.3).
const Reserve = 8 << 30

// Config describes one memory instantiation.
type Config struct {
	Strategy Strategy
	// AS is the simulated process address space shared by all
	// instances in the same process.
	AS *vmm.AddressSpace
	// MinPages and MaxPages are the wasm limits (64 KiB pages).
	// MaxPages bounds the backing allocation; it must be set.
	MinPages, MaxPages uint32
	// Pool recycles uffd arenas; required for the Uffd strategy
	// unless DisablePool is set.
	Pool *ArenaPool
	// DisablePool runs the Uffd strategy without arena recycling:
	// every instance mmaps and registers its own reservation and
	// unmaps it on Close. This is the ablation showing that the
	// paper's mitigation is the combination of userfaultfd (lock-free
	// faults) and userspace arena management (no mmap/munmap churn):
	// uffd alone still pays the mmap-lock cost at instance setup.
	DisablePool bool
	// EagerCommit makes the Mprotect strategy commit memory with a
	// single mprotect(2) call at instantiation and at every grow,
	// instead of lazily committing page-by-page from the SIGSEGV
	// handler. Real runtimes take this variant (one syscall per
	// resize, a larger critical section each time); the paper's
	// description of the strategy is the lazy variant. Both share
	// the mmap-lock serialization the paper analyzes.
	EagerCommit bool
	// UffdPoll delivers uffd faults through a dedicated handler
	// thread (the userfaultfd poll mode) instead of resolving them
	// on the faulting thread (SIGBUS mode, the paper's choice).
	// Every fault then costs a cross-thread round trip — the
	// latency the paper's footnote 2 cites as the reason to prefer
	// SIGBUS delivery.
	UffdPoll bool
	// Shared marks the memory as a wasm-threads-style shared linear
	// memory: many instances (one per worker thread) attach to it and
	// access it concurrently. Grow serializes on an internal mutex and
	// publishes the new length with release ordering per strategy (see
	// Grow); plain accessors stay the single-watermark fast path and
	// are safe for concurrent use at disjoint addresses, while racing
	// same-address traffic must go through the Atomic* accessors.
	// Shared memories refuse Snapshot (and therefore template forks).
	Shared bool
	// Span is the causal parent for spans emitted during
	// instantiation (kernel.mmap, pool.get) and, until SetSpanParent
	// repoints it, for subsequent kernel work on the mapping. Zero
	// means root / untraced.
	Span obs.SpanRef
}

// Memory is one instance's linear memory. A private memory (the
// default) is not safe for concurrent use: each wasm instance owns
// one, as the paper's isolates do. A memory created with
// Config.Shared is attached to many instances at once; its size
// bookkeeping is atomic, Grow serializes internally, and racing
// same-address traffic must use the Atomic* accessors (shared.go).
type Memory struct {
	strategy Strategy
	data     []byte
	// sizeBytes is the wasm-visible memory size. Atomic because a
	// shared memory's grower publishes it while sibling workers load
	// it on their slow paths (and via SizeBytes/memory.size).
	sizeBytes atomic.Uint64
	// fastLimit is the fast-path watermark: accesses at or below it
	// proceed with no further checks. Its meaning is per-strategy:
	// backing length for none, sizeBytes for clamp/trap, committed
	// contiguous prefix for mprotect/uffd. Atomic for the same reason
	// as sizeBytes; on amd64/arm64 the Load compiles to a plain move,
	// so the fast path stays a single compare.
	fastLimit atomic.Uint64
	// committedEnd tracks the highest byte this instance has caused
	// to be committed (fault path), which may exceed fastLimit when
	// commits are scattered; arena recycling clears up to it.
	// Advanced by CAS-max: concurrent fault handlers race to raise it.
	committedEnd atomic.Uint64
	maxBytes     uint64
	minBytes     uint64
	// gen counts grows. A HostMemView handed to the embedder records
	// the generation it was validated against; a mismatch after a
	// mid-hostcall memory.grow tells the view its window may be stale
	// (the backing array can move or extend) and it must revalidate
	// before further use.
	gen     atomic.Uint64
	mapping *vmm.Mapping
	pool    *ArenaPool
	arena   *arena // non-nil when pooled (uffd)
	poll    *uffdServer
	eager   bool // mprotect strategy: commit at grow time
	closed  bool
	// shared marks a wasm-threads-style shared memory (Config.Shared):
	// growMu serializes Grow against concurrent growers, and Grow
	// orders page commits before the length publication so a sibling
	// that observes the new size finds its pages already backed.
	shared bool
	growMu sync.Mutex

	// ptr caches the base of the backing array for the unchecked
	// accessors: a raw-pointer load skips both the watermark compare
	// and Go's slice bounds check, which is the entire point of the
	// elision fast path. Valid for the lifetime of the mapping.
	ptr unsafe.Pointer

	// obs is the per-strategy scope under the owning process
	// ("<proc>/mem/<strategy>"); grow and slow-path fault commits are
	// counted here so figures can attribute management cost per
	// strategy (the raw syscall/fault counters stay in vmm).
	obs          *obs.Scope
	growCalls    *obs.Counter
	faultCommits *obs.Counter
	// faultPages counts pages spanned by each fault-path commit, so
	// figures can report pages populated per fault invocation (bulk
	// operations commit whole ranges with a single fault).
	faultPages *obs.Counter

	// inj is the process fault injector captured at instantiation
	// (nil outside chaos runs); the fault path consults it to retry
	// transient failures and count recoveries.
	inj *faultinject.Injector
}

// faultMaxAttempts bounds the fault-path retry loop: a transient
// commit failure or dropped fault delivery is retried with backoff up
// to this many times before surfacing as a trap.Injected.
const faultMaxAttempts = 8

// backoff busy-waits before retry attempt (exponential, capped).
// Busy-waiting rather than sleeping keeps single-threaded chaos runs
// replay-deterministic: no scheduler round trip is introduced.
func backoff(attempt int) {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	d := time.Duration(1<<shift) * 250 * time.Nanosecond
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// New instantiates a linear memory per the configuration.
func New(cfg Config) (*Memory, error) {
	if cfg.AS == nil {
		return nil, fmt.Errorf("mem: Config.AS is required")
	}
	if cfg.MaxPages == 0 || cfg.MaxPages > wasm.MaxPages || cfg.MinPages > cfg.MaxPages {
		return nil, fmt.Errorf("mem: bad page limits min=%d max=%d", cfg.MinPages, cfg.MaxPages)
	}
	sc := cfg.AS.Obs().Child("mem").Child(cfg.Strategy.String())
	m := &Memory{
		strategy:     cfg.Strategy,
		minBytes:     uint64(cfg.MinPages) * wasm.PageSize,
		maxBytes:     uint64(cfg.MaxPages) * wasm.PageSize,
		shared:       cfg.Shared,
		obs:          sc,
		growCalls:    sc.Counter("grows"),
		faultCommits: sc.Counter("fault_commits"),
		faultPages:   sc.Counter("fault_pages"),
		inj:          cfg.AS.Injector(),
	}
	m.sizeBytes.Store(uint64(cfg.MinPages) * wasm.PageSize)
	size := m.sizeBytes.Load()
	switch cfg.Strategy {
	case None, Clamp, Trap:
		mp, err := cfg.AS.MmapTraced(Reserve, m.maxBytes, vmm.ProtRW, cfg.Span)
		if err != nil {
			return nil, err
		}
		if size > 0 {
			if err := mp.Touch(0, size); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
		}
		m.mapping = mp
		m.data = mp.Data()
		if cfg.Strategy == None {
			m.fastLimit.Store(mp.Backing())
		} else {
			m.fastLimit.Store(size)
		}
	case Mprotect:
		mp, err := cfg.AS.MmapTraced(Reserve, m.maxBytes, vmm.ProtNone, cfg.Span)
		if err != nil {
			return nil, err
		}
		m.mapping = mp
		m.data = mp.Data()
		m.eager = cfg.EagerCommit
		if m.eager && size > 0 {
			if err := m.mprotectRetry(mp, 0, size); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
			m.fastLimit.Store(size)
		}
	case Uffd:
		if cfg.DisablePool {
			mp, err := cfg.AS.MmapTraced(Reserve, m.maxBytes, vmm.ProtNone, cfg.Span)
			if err != nil {
				return nil, err
			}
			if err := mp.RegisterUffd(); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
			m.mapping = mp
			m.data = mp.Data()
			if cfg.UffdPoll {
				m.poll = newUffdServer()
			}
			break
		}
		if cfg.Pool == nil {
			return nil, fmt.Errorf("mem: the uffd strategy requires an arena pool")
		}
		a, err := cfg.Pool.get(cfg.AS, m.maxBytes, cfg.Span)
		if err != nil {
			if site, ok := faultinject.IsTransient(err); ok {
				// Pool exhausted (injected): degrade to the mprotect
				// strategy rather than failing the instantiation. Trap
				// semantics are identical — both virtual-memory
				// strategies fault and commit lazily — so the
				// degradation is invisible to the guest.
				mp, merr := cfg.AS.MmapTraced(Reserve, m.maxBytes, vmm.ProtNone, cfg.Span)
				if merr != nil {
					return nil, merr
				}
				m.strategy = Mprotect
				m.mapping = mp
				m.data = mp.Data()
				sc.Counter("uffd_fallbacks").Inc()
				m.inj.Recovered(site)
				break
			}
			return nil, err
		}
		m.arena = a
		m.pool = cfg.Pool
		m.mapping = a.mapping
		m.data = a.mapping.Data()
		if cfg.UffdPoll {
			m.poll = cfg.Pool.pollServer
		}
	default:
		return nil, fmt.Errorf("mem: unknown strategy %v", cfg.Strategy)
	}
	if len(m.data) > 0 {
		m.ptr = unsafe.Pointer(&m.data[0])
	}
	return m, nil
}

func cleanup(as *vmm.AddressSpace, mp *vmm.Mapping) {
	_ = as.Munmap(mp)
}

// Close releases the memory: pooled arenas are recycled, everything
// else is unmapped.
func (m *Memory) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.arena != nil {
		return m.pool.put(m.arena, max(m.fastLimit.Load(), m.committedEnd.Load()))
	}
	if m.poll != nil {
		// Instance-owned handler thread (pool-less poll mode).
		m.poll.close()
	}
	return m.mapping.Munmap()
}

// SetSpanParent repoints the causal parent of kernel work this
// memory causes from now on — fault-path commits, grow mprotects,
// arena recycling at Close. Higher layers call it at context
// boundaries: core points it at the invoke span on entry and back at
// the instance's span on exit, so a trace attributes each fault to
// the invocation that triggered it. Zero detaches.
func (m *Memory) SetSpanParent(ref obs.SpanRef) {
	if m.mapping != nil {
		m.mapping.SetSpanParent(ref)
	}
}

// Strategy returns the memory's bounds-checking strategy.
func (m *Memory) Strategy() Strategy { return m.strategy }

// Shared reports whether this is a wasm-threads-style shared memory.
func (m *Memory) Shared() bool { return m.shared }

// SizeBytes returns the current wasm-visible size in bytes.
func (m *Memory) SizeBytes() uint64 { return m.sizeBytes.Load() }

// SizePages returns the current size in wasm pages.
func (m *Memory) SizePages() uint32 { return uint32(m.sizeBytes.Load() / wasm.PageSize) }

// MaxPages returns the page limit the memory was created with.
func (m *Memory) MaxPages() uint32 { return uint32(m.maxBytes / wasm.PageSize) }

// Generation returns the grow generation: it advances on every
// successful Grow. Host-boundary code captures it when validating a
// memory window and compares on re-entry — an unchanged generation
// proves the window's range check still holds.
func (m *Memory) Generation() uint64 { return m.gen.Load() }

// storeMax raises a to at least v (CAS loop; concurrent raisers are
// all monotone, so the maximum wins).
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Grow grows the memory by delta pages, returning the previous size
// in pages, or -1 if the limit would be exceeded. The management
// cost is strategy-specific: the flat strategies commit eagerly,
// mprotect defers to faults (the paper's default runtimes resize
// with mprotect, which the fault path performs under the process
// lock), and uffd only moves the atomic size watermark.
//
// On a shared memory Grow serializes on an internal mutex and
// publishes in commit-then-length order:
//
//	none/clamp/trap  touch-commit the new pages, raise fastLimit,
//	                 then store sizeBytes — a sibling that observes
//	                 the new size (memory.size, slow-path recheck)
//	                 finds its pages already backed and its watermark
//	                 already raised;
//	mprotect         publish the length only; sibling accesses fault
//	                 and remap under the real VMA lock (the paper's
//	                 contention case), or one eager mprotect runs
//	                 under that lock here when EagerCommit is set;
//	uffd             publish the length only; the arena's userfaultfd
//	                 registration spans the whole reservation, so no
//	                 remap or reregistration happens — sibling faults
//	                 populate lock-free (pool deployments keep
//	                 resolving through the existing pollServer).
func (m *Memory) Grow(delta uint32) int32 {
	if m.shared {
		m.growMu.Lock()
		defer m.growMu.Unlock()
	}
	prev := m.sizeBytes.Load()
	old := uint32(prev / wasm.PageSize)
	newBytes := prev + uint64(delta)*wasm.PageSize
	if newBytes > m.maxBytes {
		return -1
	}
	if m.inj.GrowFail(uint32(newBytes / wasm.PageSize)) {
		// Injected commit pressure: grow fails even though the wasm
		// limit allows it, exactly as a real allocator under memory
		// pressure does. Spec-visible (grow returns -1), so only
		// enabled by plans that opt into SiteGrow.
		return -1
	}
	m.growCalls.Inc()
	m.obs.Emit(obs.EvGrow, int64(delta), int64(m.strategy))
	switch m.strategy {
	case None:
		if err := m.mapping.Touch(prev, newBytes-prev); err != nil {
			trap.Throwf(trap.MemoryLimit, "grow: %v", err)
		}
	case Clamp, Trap:
		if err := m.mapping.Touch(prev, newBytes-prev); err != nil {
			trap.Throwf(trap.MemoryLimit, "grow: %v", err)
		}
		storeMax(&m.fastLimit, newBytes)
	case Mprotect:
		if m.eager {
			if err := m.mprotectRetry(m.mapping, prev, newBytes-prev); err != nil {
				trap.Throwf(trap.MemoryLimit, "grow: %v", err)
			}
			storeMax(&m.fastLimit, newBytes)
			storeMax(&m.committedEnd, newBytes)
			break
		}
		// Lazy: pages commit on first fault.
	case Uffd:
		// Lazy: pages commit on first fault.
	}
	m.gen.Add(1)
	m.sizeBytes.Store(newBytes)
	return int32(old)
}

// load fast paths. Addresses passed in are the full effective
// address (base + static offset) computed in 64-bit arithmetic, so
// they cannot wrap.

// LoadU8 reads one byte.
func (m *Memory) LoadU8(addr uint64) byte {
	if addr+1 > m.fastLimit.Load() {
		addr = m.slow(addr, 1, false)
	}
	return m.data[addr]
}

// LoadU16 reads a little-endian uint16.
func (m *Memory) LoadU16(addr uint64) uint16 {
	if addr+2 > m.fastLimit.Load() {
		addr = m.slow(addr, 2, false)
	}
	return binary.LittleEndian.Uint16(m.data[addr:])
}

// LoadU32 reads a little-endian uint32.
func (m *Memory) LoadU32(addr uint64) uint32 {
	if addr+4 > m.fastLimit.Load() {
		addr = m.slow(addr, 4, false)
	}
	return binary.LittleEndian.Uint32(m.data[addr:])
}

// LoadU64 reads a little-endian uint64.
func (m *Memory) LoadU64(addr uint64) uint64 {
	if addr+8 > m.fastLimit.Load() {
		addr = m.slow(addr, 8, false)
	}
	return binary.LittleEndian.Uint64(m.data[addr:])
}

// StoreU8 writes one byte.
func (m *Memory) StoreU8(addr uint64, v byte) {
	if addr+1 > m.fastLimit.Load() {
		addr = m.slow(addr, 1, true)
	}
	m.data[addr] = v
}

// StoreU16 writes a little-endian uint16.
func (m *Memory) StoreU16(addr uint64, v uint16) {
	if addr+2 > m.fastLimit.Load() {
		addr = m.slow(addr, 2, true)
	}
	binary.LittleEndian.PutUint16(m.data[addr:], v)
}

// StoreU32 writes a little-endian uint32.
func (m *Memory) StoreU32(addr uint64, v uint32) {
	if addr+4 > m.fastLimit.Load() {
		addr = m.slow(addr, 4, true)
	}
	binary.LittleEndian.PutUint32(m.data[addr:], v)
}

// StoreU64 writes a little-endian uint64.
func (m *Memory) StoreU64(addr uint64, v uint64) {
	if addr+8 > m.fastLimit.Load() {
		addr = m.slow(addr, 8, true)
	}
	binary.LittleEndian.PutUint64(m.data[addr:], v)
}

// slow resolves an access that missed the fast-path watermark. It
// returns the effective address to use (adjusted only by clamp).
// It traps for genuinely out-of-bounds accesses.
func (m *Memory) slow(addr, n uint64, write bool) uint64 {
	switch m.strategy {
	case None:
		// The "MMU" window is the whole backing; only accesses past
		// the reservation-analog land here. Real hardware would read
		// garbage inside the 8 GiB window; the simulator refuses.
		trap.Throwf(trap.OutOfBounds, "none-strategy access at %#x beyond backing", addr)
	case Clamp:
		// A shared grow may have raised sizeBytes after this access read
		// a stale fastLimit; re-check against the published length before
		// redirecting, so racing accesses never clamp spuriously.
		size := m.sizeBytes.Load()
		if addr+n <= size && addr+n >= addr {
			return addr
		}
		// Out-of-bounds accesses are redirected to the end of memory.
		if size < n {
			trap.Throwf(trap.OutOfBounds, "clamp with empty memory")
		}
		return size - n
	case Trap:
		// Same stale-watermark re-check as clamp: a racing shared grow
		// publishes sizeBytes after committing pages, so an access that
		// fits the published length is in bounds even when the cached
		// fastLimit said otherwise.
		if size := m.sizeBytes.Load(); addr+n <= size && addr+n >= addr {
			return addr
		}
		trap.Throwf(trap.OutOfBounds, "trap check failed at %#x+%d (size %d)", addr, n, m.sizeBytes.Load())
	case Mprotect, Uffd:
		return m.fault(addr, n, write)
	}
	return addr
}

// fault is the simulated signal-handler path for the virtual-memory
// strategies: SIGSEGV + mprotect for Mprotect, SIGBUS + lock-free
// population for Uffd. Transient failures (injected commit errors,
// dropped fault deliveries) are retried with backoff up to
// faultMaxAttempts; a failure persisting past the budget surfaces as
// trap.Injected, and every absorbed failure counts a recovery.
func (m *Memory) fault(addr, n uint64, write bool) uint64 {
	// The runtime's handler knows the instance's true size; accesses
	// beyond it are genuine bounds violations.
	if size := m.sizeBytes.Load(); addr+n > size || addr+n < addr {
		trap.Throwf(trap.OutOfBounds, "access at %#x+%d beyond size %d", addr, n, size)
	}
	// Open the fault span under the mapping's current parent (the
	// invoke that triggered the access) and make it the parent of the
	// kernel work the handler performs, restoring on exit (including
	// trap unwinds, which panic through this frame). The zero-span
	// check keeps the disabled path free of atomic stores.
	saved := m.mapping.SpanParent()
	if sp := m.obs.StartSpan(obs.SpanFault, saved); sp.Ref().Valid() {
		m.mapping.SetSpanParent(sp.Ref())
		defer func() {
			m.mapping.SetSpanParent(saved)
			sp.End()
		}()
	}
	ps := m.mapping.PageSize()
	start := addr / ps * ps
	end := (addr + n + ps - 1) / ps * ps
	var lastErr error
	lastSite := faultinject.SiteFaultDrop
	for attempt := 0; attempt < faultMaxAttempts; attempt++ {
		if attempt > 0 {
			backoff(attempt)
		}
		kind := m.mapping.Fault(addr, write)
		if kind == vmm.FaultDropped {
			// Delivery lost: the access re-faults after backoff, as a
			// thread whose signal got lost would when it retries the
			// instruction.
			lastErr = &faultinject.Error{Site: faultinject.SiteFaultDrop}
			lastSite = faultinject.SiteFaultDrop
			continue
		}
		var err error
		switch kind {
		case vmm.FaultSegv:
			// SIGSEGV handler: commit the page range with mprotect(2),
			// serialized on the process mmap lock.
			err = m.mapping.Mprotect(start, end-start, vmm.ProtRW)
		case vmm.FaultUffd:
			// SIGBUS mode resolves on the faulting thread, lock-free;
			// poll mode round-trips to the handler thread (the latency
			// the paper's footnote 2 cites for preferring SIGBUS).
			if m.poll != nil {
				err = m.poll.resolve(m.mapping, start, end-start)
			} else {
				err = m.mapping.UffdZeroPages(start, end-start)
			}
		case vmm.FaultResolved:
			// Another thread (or a previous arena user) already
			// populated the page; proceed.
		default:
			trap.Throwf(trap.OutOfBounds, "unexpected fault kind %v", kind)
		}
		if err != nil {
			if site, ok := faultinject.IsTransient(err); ok {
				lastErr, lastSite = err, site
				continue
			}
			trap.Throwf(trap.OutOfBounds, "fault handler: %v", err)
		}
		if lastErr != nil {
			m.inj.Recovered(lastSite)
		}
		storeMax(&m.committedEnd, end)
		m.faultCommits.Inc()
		if kind != vmm.FaultResolved {
			// Pages spanned by this handler invocation's commit; a bulk
			// range resolves in one invocation, so this is the
			// pages-populated-per-fault figure.
			m.faultPages.Add(int64((end - start) / ps))
		}
		m.advanceWatermark()
		return addr
	}
	trap.ThrowWrap(trap.Injected, lastErr,
		"fault at %#x+%d unresolved after %d attempts", addr, n, faultMaxAttempts)
	return 0 // unreachable
}

// mprotectRetry commits [off, off+length) read-write, retrying
// injected transient failures with backoff. Used by eager-commit
// instantiation and grow; the lazy fault path has its own loop.
func (m *Memory) mprotectRetry(mp *vmm.Mapping, off, length uint64) error {
	var lastErr error
	for attempt := 0; attempt < faultMaxAttempts; attempt++ {
		if attempt > 0 {
			backoff(attempt)
		}
		err := mp.Mprotect(off, length, vmm.ProtRW)
		if err == nil {
			if lastErr != nil {
				m.inj.Recovered(faultinject.SiteMprotect)
			}
			return nil
		}
		if _, ok := faultinject.IsTransient(err); !ok {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// advanceWatermark extends the fast-path limit over the contiguous
// committed prefix so subsequent accesses skip the fault path.
func (m *Memory) advanceWatermark() {
	w := m.mapping.CommittedPrefix(m.fastLimit.Load())
	if size := m.sizeBytes.Load(); w > size {
		w = size
	}
	storeMax(&m.fastLimit, w)
}

// Bytes returns a slice over [addr, addr+n) after ensuring the range
// is accessible, for bulk operations (memory.copy/fill, segment
// initialization, WASI I/O). Traps on out-of-bounds. The whole range
// is validated (and, for the virtual-memory strategies, committed)
// through one CheckRange call — bulk operations pay one check, not
// one per page or per element.
func (m *Memory) Bytes(addr, n uint64, write bool) []byte {
	size := m.sizeBytes.Load()
	if n == 0 {
		if addr > size {
			trap.Throwf(trap.OutOfBounds, "zero-length access at %#x beyond size", addr)
		}
		return nil
	}
	if addr+n > size || addr+n < addr {
		trap.Throwf(trap.OutOfBounds, "bulk access [%#x,%#x) beyond size %d", addr, addr+n, size)
	}
	// Bulk operations trap on out-of-bounds under every strategy
	// (wasm's memory.copy/fill semantics), so the clamp redirect does
	// not apply and the elision-grade range check is valid here for
	// clamp too; in-bounds was established above, hence for the
	// non-clamp strategies CheckRange cannot fail.
	if m.strategy != Clamp {
		if _, ok := m.CheckRange(addr, n, write); !ok {
			trap.Throwf(trap.OutOfBounds, "bulk access [%#x,%#x) beyond size %d", addr, addr+n, size)
		}
	}
	return m.data[addr : addr+n]
}

// WriteAt copies b into memory at addr through the commit machinery.
func (m *Memory) WriteAt(addr uint64, b []byte) {
	if len(b) == 0 {
		return
	}
	copy(m.Bytes(addr, uint64(len(b)), true), b)
}

// Fill implements memory.fill.
func (m *Memory) Fill(dst, val, n uint64) {
	if n == 0 {
		if dst > m.sizeBytes.Load() {
			trap.Throw(trap.OutOfBounds)
		}
		return
	}
	b := m.Bytes(dst, n, true)
	for i := range b {
		b[i] = byte(val)
	}
}

// Copy implements memory.copy (memmove semantics).
func (m *Memory) Copy(dst, src, n uint64) {
	if n == 0 {
		if size := m.sizeBytes.Load(); dst > size || src > size {
			trap.Throw(trap.OutOfBounds)
		}
		return
	}
	d := m.Bytes(dst, n, true)
	s := m.Bytes(src, n, false)
	copy(d, s)
}

// Mapping exposes the underlying mapping for statistics.
func (m *Memory) Mapping() *vmm.Mapping { return m.mapping }
