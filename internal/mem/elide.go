package mem

import (
	"unsafe"
)

// This file backs the compiled engines' bounds-check elision pass
// (DESIGN.md §11): CheckRange validates — and, for the virtual-memory
// strategies, commits — a whole address range up front, after which
// the unchecked accessors read and write with no watermark compare
// and no Go slice bounds check. The contract mirrors what a real
// optimizing JIT relies on:
//
//   - CheckRange never traps. A failed check means "this range cannot
//     be proven accessible"; the caller must fall back to the checked
//     per-access path, which reproduces exact trap sites and clamp
//     redirect semantics. This is what keeps elided code bit-for-bit
//     equivalent to per-access-checked code.
//   - A successful check is never invalidated: linear memory only
//     grows, and committed pages stay committed for the lifetime of
//     the instance (arena recycling happens between instances).
//   - The clamp strategy always fails the check: clamp rewrites each
//     out-of-bounds address per access (paper §V), a per-access
//     semantics that a range check cannot summarize, so clamp runs
//     the checked fallback unconditionally.
//
// The unchecked accessors assume a little-endian host, like every
// production wasm engine's generated loads/stores; init refuses to
// start elsewhere.

func init() {
	x := uint16(1)
	if *(*byte)(unsafe.Pointer(&x)) != 1 {
		panic("mem: unchecked accessors require a little-endian host")
	}
}

// CheckRange reports whether every access inside [addr, addr+n) may
// proceed without further bounds checks, committing the spanned pages
// first when the strategy resolves accessibility through faults. It
// never traps: on false the caller must take the fully-checked path.
// The returned address is addr itself on success (kept in the
// signature so future strategies may relocate ranges the way clamp
// relocates single accesses).
// ElisionCapable reports whether CheckRange can ever succeed for
// this memory: clamp rewrites addresses per access, so range guards
// can skip their evaluation work and go straight to the checked
// fallback.
func (m *Memory) ElisionCapable() bool { return m.strategy != Clamp }

func (m *Memory) CheckRange(addr, n uint64, write bool) (uint64, bool) {
	end := addr + n
	if end < addr {
		return 0, false
	}
	if m.strategy != Clamp && end <= m.fastLimit.Load() {
		return addr, true
	}
	switch m.strategy {
	case Clamp:
		// Per-access redirect semantics; see the file comment.
		return 0, false
	case None, Trap:
		// fastLimit is the backing length (none) or the wasm-visible
		// size (trap): past it the range is genuinely out of bounds —
		// unless a shared grow published a larger size after the
		// watermark read above.
		if m.strategy == Trap && end <= m.sizeBytes.Load() {
			return addr, true
		}
		return 0, false
	case Mprotect, Uffd:
		if end > m.sizeBytes.Load() {
			return 0, false
		}
		m.faultRange(addr, n, write)
		return addr, true
	}
	return 0, false
}

// faultRange commits every page spanned by [addr, addr+n) with at
// most one fault invocation: the first uncommitted page in the range
// takes the fault, and the handler's single mprotect /
// UFFDIO_ZEROPAGE call populates the rest of the span
// (already-committed pages inside it are skipped by the per-page
// CAS). The caller must have established addr+n <= sizeBytes.
func (m *Memory) faultRange(addr, n uint64, write bool) {
	end := addr + n
	hole := m.mapping.CommittedPrefix(addr)
	if hole >= end {
		// Fully committed already (fastLimit may simply trail a
		// scattered commit pattern); pull the watermark forward so the
		// next check takes the fast path.
		m.advanceWatermark()
		return
	}
	m.fault(hole, end-hole, write)
}

// Unchecked accessors: raw little-endian loads and stores with no
// bounds or commit checks of any kind. The caller must have
// established accessibility of [addr, addr+width) via CheckRange on
// this Memory. The compiled engines' elided access closures are the
// only intended callers.

// LoadU8Unchecked reads one byte with no checks.
func (m *Memory) LoadU8Unchecked(addr uint64) byte {
	return *(*byte)(unsafe.Add(m.ptr, uintptr(addr)))
}

// LoadU16Unchecked reads a little-endian uint16 with no checks.
func (m *Memory) LoadU16Unchecked(addr uint64) uint16 {
	return *(*uint16)(unsafe.Add(m.ptr, uintptr(addr)))
}

// LoadU32Unchecked reads a little-endian uint32 with no checks.
func (m *Memory) LoadU32Unchecked(addr uint64) uint32 {
	return *(*uint32)(unsafe.Add(m.ptr, uintptr(addr)))
}

// LoadU64Unchecked reads a little-endian uint64 with no checks.
func (m *Memory) LoadU64Unchecked(addr uint64) uint64 {
	return *(*uint64)(unsafe.Add(m.ptr, uintptr(addr)))
}

// StoreU8Unchecked writes one byte with no checks.
func (m *Memory) StoreU8Unchecked(addr uint64, v byte) {
	*(*byte)(unsafe.Add(m.ptr, uintptr(addr))) = v
}

// StoreU16Unchecked writes a little-endian uint16 with no checks.
func (m *Memory) StoreU16Unchecked(addr uint64, v uint16) {
	*(*uint16)(unsafe.Add(m.ptr, uintptr(addr))) = v
}

// StoreU32Unchecked writes a little-endian uint32 with no checks.
func (m *Memory) StoreU32Unchecked(addr uint64, v uint32) {
	*(*uint32)(unsafe.Add(m.ptr, uintptr(addr))) = v
}

// StoreU64Unchecked writes a little-endian uint64 with no checks.
func (m *Memory) StoreU64Unchecked(addr uint64, v uint64) {
	*(*uint64)(unsafe.Add(m.ptr, uintptr(addr))) = v
}
