package mem

import (
	"math/rand"
	"sync"
	"testing"

	"leapsandbounds/internal/trap"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

func testAS() *vmm.AddressSpace {
	cfg := vmm.DefaultConfig()
	cfg.ShootdownBase, cfg.ShootdownPerThread, cfg.MprotectPerPage, cfg.MmapBase = 0, 0, 0, 0
	return vmm.New(cfg)
}

func newMem(t *testing.T, s Strategy, minPages, maxPages uint32) *Memory {
	t.Helper()
	cfg := Config{Strategy: s, AS: testAS(), MinPages: minPages, MaxPages: maxPages}
	if s == Uffd {
		cfg.Pool = NewArenaPool()
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func catchTrap(f func()) (trapped *trap.Trap) {
	defer func() {
		if r := recover(); r != nil {
			if tr, ok := r.(*trap.Trap); ok {
				trapped = tr
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

func TestLoadStoreRoundtrip(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 2, 16)
			m.StoreU8(0, 0xab)
			m.StoreU16(100, 0xbeef)
			m.StoreU32(2000, 0xdeadbeef)
			m.StoreU64(70000, 0x0123456789abcdef)
			if got := m.LoadU8(0); got != 0xab {
				t.Errorf("u8: %#x", got)
			}
			if got := m.LoadU16(100); got != 0xbeef {
				t.Errorf("u16: %#x", got)
			}
			if got := m.LoadU32(2000); got != 0xdeadbeef {
				t.Errorf("u32: %#x", got)
			}
			if got := m.LoadU64(70000); got != 0x0123456789abcdef {
				t.Errorf("u64: %#x", got)
			}
		})
	}
}

func TestZeroInitialized(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 2, 4)
			for _, addr := range []uint64{0, 1, wasm.PageSize - 8, wasm.PageSize, 2*wasm.PageSize - 8} {
				if got := m.LoadU64(addr); got != 0 {
					t.Errorf("addr %d: %#x, want 0", addr, got)
				}
			}
		})
	}
}

func TestOutOfBoundsTraps(t *testing.T) {
	// All strategies except none and clamp must trap past size;
	// clamp redirects, none reads the over-allocated window.
	for _, s := range []Strategy{Trap, Mprotect, Uffd} {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 1, 4)
			size := m.SizeBytes()
			if tr := catchTrap(func() { m.LoadU32(size) }); tr == nil {
				t.Error("load at size did not trap")
			}
			if tr := catchTrap(func() { m.LoadU32(size - 2) }); tr == nil {
				t.Error("straddling load did not trap")
			}
			if tr := catchTrap(func() { m.StoreU64(size*10, 1) }); tr == nil {
				t.Error("far store did not trap")
			}
			// In-bounds still works afterwards.
			m.StoreU32(size-4, 7)
			if m.LoadU32(size-4) != 7 {
				t.Error("in-bounds access broken after trap")
			}
		})
	}
}

func TestClampRedirectsToEnd(t *testing.T) {
	m := newMem(t, Clamp, 1, 4)
	size := m.SizeBytes()
	m.StoreU32(size-4, 0x11223344)
	// Out-of-bounds load clamps to the last valid slot.
	if got := m.LoadU32(size + 1000); got != 0x11223344 {
		t.Errorf("clamped load: %#x, want %#x", got, 0x11223344)
	}
	// Out-of-bounds store writes the last valid slot.
	m.StoreU32(size*2, 0x55667788)
	if got := m.LoadU32(size - 4); got != 0x55667788 {
		t.Errorf("after clamped store: %#x", got)
	}
}

func TestNoneAllowsWithinBacking(t *testing.T) {
	// The unsafe baseline: accesses beyond size but within the
	// backing window succeed (reading zeros), exactly like the
	// paper's fully-RW-mapped 8 GiB region.
	m := newMem(t, None, 1, 4)
	size := m.SizeBytes()
	if got := m.LoadU32(size + 8); got != 0 {
		t.Errorf("beyond-size load: %#x, want 0", got)
	}
}

func TestGrow(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 1, 4)
			if got := m.Grow(2); got != 1 {
				t.Fatalf("grow: %d, want 1", got)
			}
			if m.SizePages() != 3 {
				t.Fatalf("size %d pages, want 3", m.SizePages())
			}
			// New pages are zero and writable.
			addr := uint64(2 * wasm.PageSize)
			if got := m.LoadU64(addr); got != 0 {
				t.Errorf("new page not zero: %#x", got)
			}
			m.StoreU64(addr, 42)
			if m.LoadU64(addr) != 42 {
				t.Error("store to grown page lost")
			}
			// Beyond max fails.
			if got := m.Grow(2); got != -1 {
				t.Errorf("over-max grow: %d, want -1", got)
			}
			if m.SizePages() != 3 {
				t.Errorf("size changed by failed grow: %d", m.SizePages())
			}
		})
	}
}

func TestGrowZeroPages(t *testing.T) {
	m := newMem(t, Trap, 1, 4)
	if got := m.Grow(0); got != 1 {
		t.Errorf("grow(0): %d, want 1", got)
	}
}

func TestBulkOps(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 2, 4)
			m.Fill(100, 0xcc, 50)
			for i := uint64(100); i < 150; i++ {
				if m.LoadU8(i) != 0xcc {
					t.Fatalf("fill byte %d wrong", i)
				}
			}
			m.Copy(70000, 100, 50) // cross-page destination
			for i := uint64(70000); i < 70050; i++ {
				if m.LoadU8(i) != 0xcc {
					t.Fatalf("copy byte %d wrong", i)
				}
			}
			// Overlapping copy keeps memmove semantics.
			m.WriteAt(200, []byte{1, 2, 3, 4, 5})
			m.Copy(202, 200, 5)
			want := []byte{1, 2, 1, 2, 3, 4, 5}
			for i, w := range want {
				if got := m.LoadU8(uint64(200 + i)); got != w {
					t.Fatalf("overlap copy byte %d: %d, want %d", i, got, w)
				}
			}
		})
	}
}

func TestBulkOutOfBounds(t *testing.T) {
	for _, s := range []Strategy{Trap, Mprotect, Uffd, Clamp} {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 1, 2)
			size := m.SizeBytes()
			if tr := catchTrap(func() { m.Fill(size-10, 0, 20) }); tr == nil {
				t.Error("fill past end did not trap")
			}
			if tr := catchTrap(func() { m.Copy(0, size-10, 20) }); tr == nil {
				t.Error("copy past end did not trap")
			}
		})
	}
}

func TestUffdArenaReuseIsZeroed(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	cfg := Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool}

	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1.StoreU64(4096, 0xdead)
	m1.StoreU64(60000, 0xbeef)
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.LoadU64(4096); got != 0 {
		t.Errorf("recycled arena leaked %#x at 4096", got)
	}
	if got := m2.LoadU64(60000); got != 0 {
		t.Errorf("recycled arena leaked %#x at 60000", got)
	}
	st := pool.Stats()
	if st.Created != 1 || st.Reused != 1 {
		t.Errorf("pool stats %+v, want 1 created 1 reused", st)
	}
}

func TestUffdPoolAvoidsMmap(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	cfg := Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool}
	for i := 0; i < 10; i++ {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.StoreU32(0, uint32(i))
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := as.Snapshot().MmapCalls; got != 1 {
		t.Errorf("mmap calls %d, want 1 (arena reuse)", got)
	}
	// Compare with mprotect: one mmap per instance.
	as2 := testAS()
	for i := 0; i < 10; i++ {
		m, err := New(Config{Strategy: Mprotect, AS: as2, MinPages: 1, MaxPages: 4})
		if err != nil {
			t.Fatal(err)
		}
		m.StoreU32(0, uint32(i))
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := as2.Snapshot().MmapCalls; got != 10 {
		t.Errorf("mprotect-strategy mmap calls %d, want 10", got)
	}
}

func TestPoolDrain(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	cfg := Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	pool.Drain()
	if got := as.Snapshot().MunmapCalls; got != 1 {
		t.Errorf("munmap calls after drain: %d, want 1", got)
	}
}

// TestStrategyEquivalence verifies that all five strategies observe
// identical memory semantics on random in-bounds access sequences.
func TestStrategyEquivalence(t *testing.T) {
	const (
		minPages = 2
		maxPages = 8
		ops      = 5000
	)
	type op struct {
		kind  int // 0 store8, 1 store32, 2 store64, 3 grow, 4 fill, 5 copy
		addr  uint64
		addr2 uint64
		val   uint64
		n     uint64
	}
	r := rand.New(rand.NewSource(42))
	sizeBytes := uint64(minPages * wasm.PageSize)
	var script []op
	for i := 0; i < ops; i++ {
		o := op{kind: r.Intn(6), val: r.Uint64()}
		switch o.kind {
		case 3:
			if sizeBytes < maxPages*wasm.PageSize && r.Intn(10) == 0 {
				sizeBytes += wasm.PageSize
			} else {
				o.kind = 0
			}
		case 4, 5:
			o.n = uint64(r.Intn(200))
			o.addr = uint64(r.Int63n(int64(sizeBytes - 200)))
			o.addr2 = uint64(r.Int63n(int64(sizeBytes - 200)))
		}
		if o.kind <= 2 {
			o.addr = uint64(r.Int63n(int64(sizeBytes - 8)))
		}
		script = append(script, o)
	}

	run := func(s Strategy) []uint64 {
		cfg := Config{Strategy: s, AS: testAS(), MinPages: minPages, MaxPages: maxPages}
		if s == Uffd {
			cfg.Pool = NewArenaPool()
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		var sums []uint64
		for _, o := range script {
			switch o.kind {
			case 0:
				m.StoreU8(o.addr, byte(o.val))
			case 1:
				m.StoreU32(o.addr, uint32(o.val))
			case 2:
				m.StoreU64(o.addr, o.val)
			case 3:
				m.Grow(1)
			case 4:
				m.Fill(o.addr, o.val&0xff, o.n)
			case 5:
				m.Copy(o.addr, o.addr2, o.n)
			}
			sums = append(sums, m.LoadU64(o.addr))
		}
		return sums
	}

	want := run(None)
	for _, s := range []Strategy{Clamp, Trap, Mprotect, Uffd} {
		got := run(s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v diverges from none at op %d: %#x vs %#x", s, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentInstances runs many instances per strategy on
// goroutines sharing one address space, as the harness does.
func TestConcurrentInstances(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			as := testAS()
			pool := NewArenaPool()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					for i := 0; i < 30; i++ {
						cfg := Config{Strategy: s, AS: as, MinPages: 2, MaxPages: 8, Pool: pool}
						m, err := New(cfg)
						if err != nil {
							t.Error(err)
							return
						}
						for a := uint64(0); a < m.SizeBytes(); a += 4096 {
							m.StoreU64(a, a^uint64(seed))
						}
						for a := uint64(0); a < m.SizeBytes(); a += 4096 {
							if got := m.LoadU64(a); got != a^uint64(seed) {
								t.Errorf("readback at %d: %#x", a, got)
								break
							}
						}
						if err := m.Close(); err != nil {
							t.Error(err)
							return
						}
					}
				}(int64(w))
			}
			wg.Wait()
			if err := as.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestMprotectEagerCommit(t *testing.T) {
	// Eager commit must keep identical semantics while collapsing
	// per-page fault commits into one mprotect per grow.
	as := testAS()
	m, err := New(Config{Strategy: Mprotect, AS: as, MinPages: 4, MaxPages: 8,
		EagerCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Touch every page: no further mprotect calls should happen.
	for a := uint64(0); a+8 <= m.SizeBytes(); a += 4096 {
		m.StoreU64(a, a)
	}
	if got := as.Snapshot().MprotectCalls; got != 1 {
		t.Errorf("mprotect calls %d, want 1 (eager at instantiation)", got)
	}
	if got := m.Grow(2); got != 4 {
		t.Fatalf("grow: %d", got)
	}
	m.StoreU64(5*65536, 7)
	if m.LoadU64(5*65536) != 7 {
		t.Error("readback after eager grow failed")
	}
	if got := as.Snapshot().MprotectCalls; got != 2 {
		t.Errorf("mprotect calls %d, want 2 (one per grow)", got)
	}
	// OOB still traps.
	if tr := catchTrap(func() { m.LoadU32(m.SizeBytes()) }); tr == nil {
		t.Error("eager commit lost OOB trapping")
	}
}

func TestUffdPollModeSemantics(t *testing.T) {
	// Poll-mode delivery must behave identically to SIGBUS mode,
	// only slower (a handler-thread round trip per fault).
	as := testAS()
	pool := NewArenaPool()
	defer pool.Drain()
	m, err := New(Config{Strategy: Uffd, AS: as, MinPages: 2, MaxPages: 8,
		Pool: pool, UffdPoll: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.StoreU64(0, 42)
	m.StoreU64(100000, 7)
	if m.LoadU64(0) != 42 || m.LoadU64(100000) != 7 {
		t.Error("poll-mode readback failed")
	}
	if tr := catchTrap(func() { m.LoadU64(m.SizeBytes()) }); tr == nil {
		t.Error("poll mode lost OOB trapping")
	}
	if as.Snapshot().UffdFaults == 0 {
		t.Error("no faults served")
	}
}

func TestUffdPollNoPool(t *testing.T) {
	as := testAS()
	m, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4,
		DisablePool: true, UffdPoll: true})
	if err != nil {
		t.Fatal(err)
	}
	m.StoreU32(500, 9)
	if m.LoadU32(500) != 9 {
		t.Error("readback failed")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUffdNoPoolUnmapsPerInstance(t *testing.T) {
	as := testAS()
	for i := 0; i < 5; i++ {
		m, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4,
			DisablePool: true})
		if err != nil {
			t.Fatal(err)
		}
		m.StoreU32(0, uint32(i))
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	snap := as.Snapshot()
	if snap.MmapCalls != 5 || snap.MunmapCalls != 5 {
		t.Errorf("mmap/munmap %d/%d, want 5/5 (no pooling)", snap.MmapCalls, snap.MunmapCalls)
	}
}

func TestWatermarkAdvance(t *testing.T) {
	// Sequential touch should leave only page-count faults, not
	// per-access faults, thanks to the committed-prefix watermark.
	as := testAS()
	m, err := New(Config{Strategy: Mprotect, AS: as, MinPages: 16, MaxPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for a := uint64(0); a+8 <= m.SizeBytes(); a += 8 {
		m.StoreU64(a, a)
	}
	snap := as.Snapshot()
	pages := int64(m.SizeBytes() / 4096)
	if snap.MprotectCalls > pages+1 {
		t.Errorf("mprotect calls %d for %d pages: watermark not advancing", snap.MprotectCalls, pages)
	}
}
