package mem

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"leapsandbounds/internal/faultinject"
	"leapsandbounds/internal/hazard"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/vmm"
)

// ErrArenaDoubleRelease reports an arena returned to the pool twice
// without an intervening acquisition — a lifetime bug that would
// otherwise hand the same mapping to two instances.
var ErrArenaDoubleRelease = errors.New("mem: arena released to the pool twice")

// ArenaPool recycles userfaultfd-registered memory arenas across
// instance lifetimes. This is the paper's uffd mitigation (§4.2.1):
// instead of mmap/mprotect/munmap per instance — each serializing on
// the kernel's per-process mmap lock — arenas are parked on a
// lock-free Treiber stack, each arena's size is a plain watermark,
// and arena retirement is protected by hazard pointers so that a
// concurrent pop never touches a freed arena.
//
// A pool is shared by every instance in a simulated process; all
// operations are safe for concurrent use.
type ArenaPool struct {
	head   atomic.Pointer[arena]
	domain hazard.Domain
	// obsOnce wires the hazard domain's reclamation telemetry to the
	// first acquiring process's scope (pools are per-process, so the
	// first is the only one).
	obsOnce sync.Once
	// pollServer serves poll-mode fault delivery when a Memory is
	// configured with UffdPoll (one handler thread per process, as
	// a real poll-mode userfaultfd deployment would run).
	pollServer *uffdServer

	// Statistics.
	created   atomic.Int64
	reused    atomic.Int64
	returned  atomic.Int64
	discarded atomic.Int64
}

// arena is one pooled memory reservation plus its intrusive stack
// link.
type arena struct {
	mapping *vmm.Mapping
	next    atomic.Pointer[arena]
	// highWater is the largest wasm-visible size the arena has
	// served, so recycling only clears what was used.
	highWater uint64
	// obs is the owning process's scope, captured at creation so put
	// (which has no AddressSpace parameter) can trace recycling.
	obs *obs.Scope
	// pooled guards against double release: true while the arena sits
	// in (or is being returned to) the pool.
	pooled atomic.Bool
}

// NewArenaPool returns an empty pool.
func NewArenaPool() *ArenaPool {
	return &ArenaPool{pollServer: newUffdServer()}
}

// get pops a pooled arena of at least maxBytes backing, or creates
// a fresh uffd-registered reservation. Injected pool exhaustion
// surfaces as a transient error callers may absorb by falling back
// to another strategy; injected registry contention stalls the call.
// parent is the causal span the acquisition (and any mmap it causes)
// reports under; the returned arena's mapping is re-parented to it.
func (p *ArenaPool) get(as *vmm.AddressSpace, maxBytes uint64, parent obs.SpanRef) (*arena, error) {
	p.obsOnce.Do(func() { p.domain.AttachObs(as.Obs().Child("hazard")) })
	sp := as.Obs().StartSpan(obs.SpanPoolGet, parent)
	defer sp.End()
	inj := as.Injector()
	inj.DelayIf(faultinject.SitePoolContention)
	if err := inj.Fail(faultinject.SitePoolGet); err != nil {
		return nil, fmt.Errorf("mem: arena pool exhausted: %w", err)
	}
	if a := p.pop(maxBytes); a != nil {
		p.reused.Add(1)
		a.mapping.SetSpanParent(parent)
		as.Obs().Emit(obs.EvArenaReuse, int64(a.mapping.Backing()), 0)
		return a, nil
	}
	mp, err := as.MmapTraced(Reserve, maxBytes, vmm.ProtNone, sp.Ref())
	if err != nil {
		return nil, err
	}
	if err := mp.RegisterUffd(); err != nil {
		_ = mp.Munmap()
		return nil, err
	}
	mp.SetSpanParent(parent)
	p.created.Add(1)
	as.Obs().Emit(obs.EvArenaCreate, int64(maxBytes), 0)
	return &arena{mapping: mp, obs: as.Obs()}, nil
}

// pop removes an arena with sufficient backing from the stack. Only
// the head is inspected: arenas in one pool are uniformly sized in
// practice (one pool per workload), so a deeper search is not
// needed; an unsuitable head is left in place and nil returned.
func (p *ArenaPool) pop(maxBytes uint64) *arena {
	slot := p.domain.Acquire()
	defer slot.Release()
	for {
		a := hazard.Protect(slot, &p.head)
		if a == nil {
			return nil
		}
		if a.mapping.Backing() < maxBytes {
			return nil
		}
		next := a.next.Load()
		if p.head.CompareAndSwap(a, next) {
			slot.Clear()
			a.pooled.Store(false)
			return a
		}
	}
}

// put recycles an arena after an instance closes. The used range is
// zeroed and decommitted lock-free so the next instance observes
// fresh zero-filled pages (kernel semantics), then the arena is
// pushed back. Transient decommit failures are retried; if one
// persists the arena is discarded (unmapped) rather than recycled
// dirty. Releasing the same arena twice is detected and rejected.
func (p *ArenaPool) put(a *arena, usedBytes uint64) error {
	if a.pooled.Swap(true) {
		return ErrArenaDoubleRelease
	}
	// A fork's arena carries a copy-on-write source; detach it before
	// the arena is parked so the next borrower observes zero-filled
	// pages, not the template image.
	a.mapping.SetSource(nil)
	// Recycling work (decommit) parents under a pool.put span, itself
	// under whatever the closing instance last pointed the mapping at;
	// once parked the arena is detached from that instance's tree.
	sp := a.obs.StartSpan(obs.SpanPoolPut, a.mapping.SpanParent())
	if sp.Ref().Valid() {
		a.mapping.SetSpanParent(sp.Ref())
	}
	defer func() {
		a.mapping.SetSpanParent(obs.SpanRef{})
		sp.End()
	}()
	inj := a.mapping.AddressSpace().Injector()
	inj.DelayIf(faultinject.SitePoolContention)
	if usedBytes > a.highWater {
		a.highWater = usedBytes
	}
	cleared := int64(a.highWater)
	if a.highWater > 0 {
		clear(a.mapping.Data()[:a.highWater])
		var err error
		for attempt := 0; attempt < faultMaxAttempts; attempt++ {
			if attempt > 0 {
				backoff(attempt)
			}
			if err = a.mapping.UffdDecommitPages(0, a.highWater); err == nil {
				if attempt > 0 {
					inj.Recovered(faultinject.SiteUffdZero)
				}
				break
			}
			if _, ok := faultinject.IsTransient(err); !ok {
				return err
			}
		}
		if err != nil {
			// Degradation: never recycle an arena whose pages could
			// not be returned to missing state — discard it and let
			// the next get mint a fresh one.
			p.discarded.Add(1)
			return a.mapping.Munmap()
		}
		a.highWater = 0
	}
	p.returned.Add(1)
	a.obs.Emit(obs.EvArenaRecycle, cleared, 0)
	for {
		old := p.head.Load()
		a.next.Store(old)
		if p.head.CompareAndSwap(old, a) {
			return nil
		}
	}
}

// Drain unmaps every pooled arena, retiring each through the hazard
// domain so in-flight pops complete safely. The teardown is one
// pool.drain span: every arena's final munmap — immediate or
// deferred past a protecting reader — parents under it.
func (p *ArenaPool) Drain() {
	var sp obs.Span
	for {
		a := p.pop(0)
		if a == nil {
			break
		}
		if !sp.Ref().Valid() {
			sp = a.obs.StartSpan(obs.SpanPoolDrain, obs.SpanRef{})
		}
		m := a.mapping
		m.SetSpanParent(sp.Ref())
		hazard.Retire(&p.domain, a, func() { _ = m.Munmap() })
	}
	p.domain.Flush()
	sp.End()
	if p.pollServer != nil {
		p.pollServer.close()
	}
}

// PoolStats reports pool activity.
type PoolStats struct {
	Created, Reused, Returned int64
	// Discarded counts arenas unmapped instead of recycled because
	// their decommit failed persistently.
	Discarded int64
}

// Stats returns a snapshot of pool counters.
func (p *ArenaPool) Stats() PoolStats {
	return PoolStats{
		Created:   p.created.Load(),
		Reused:    p.reused.Load(),
		Returned:  p.returned.Load(),
		Discarded: p.discarded.Load(),
	}
}

// sharedPoolKey identifies the per-address-space default pool in the
// vmm aux stash.
const sharedPoolKey = "mem.arenapool"

// SharedPool returns the address space's default arena pool,
// creating it on first use. One pool per simulated process is the
// paper's deployment model: arena recycling only pays off when
// arenas outlive individual instances, so instantiations that don't
// wire an explicit pool must all share this one rather than each
// creating a pool that dies with the instance.
func SharedPool(as *vmm.AddressSpace) *ArenaPool {
	return as.Aux(sharedPoolKey, func() any { return NewArenaPool() }).(*ArenaPool)
}
