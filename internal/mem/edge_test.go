package mem

import (
	"errors"
	"sync"
	"testing"

	"leapsandbounds/internal/faultinject"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// injectedAS is testAS with a fault injector installed.
func injectedAS(plan faultinject.Plan) *vmm.AddressSpace {
	as := testAS()
	as.SetInjector(faultinject.New(plan, as.Obs().Child("faultinject")))
	return as
}

// TestGrowExactlyToMax grows each strategy to precisely MaxPages: the
// boundary grow must succeed, the last byte must be addressable, and
// any further grow (including by zero pages — a size query) must
// behave per spec.
func TestGrowExactlyToMax(t *testing.T) {
	cases := []struct{ min, max, delta uint32 }{
		{1, 4, 3}, // multi-page jump to the limit
		{3, 4, 1}, // single-page step to the limit
		{2, 2, 0}, // already at the limit; grow(0) reports it
	}
	for _, s := range Strategies() {
		for _, c := range cases {
			t.Run(s.String(), func(t *testing.T) {
				m := newMem(t, s, c.min, c.max)
				if got := m.Grow(c.delta); got != int32(c.min) {
					t.Fatalf("grow(%d): %d, want %d", c.delta, got, c.min)
				}
				if m.SizePages() != c.max {
					t.Fatalf("size %d pages, want max %d", m.SizePages(), c.max)
				}
				// The final page is fully usable.
				last := uint64(c.max)*wasm.PageSize - 8
				m.StoreU64(last, 0xfeedface)
				if m.LoadU64(last) != 0xfeedface {
					t.Error("last slot of max-grown memory broken")
				}
				// Past the limit: -1, state untouched.
				if got := m.Grow(1); got != -1 {
					t.Errorf("grow past max: %d, want -1", got)
				}
				if got := m.Grow(0); got != int32(c.max) {
					t.Errorf("grow(0) at max: %d, want %d", got, c.max)
				}
				if m.LoadU64(last) != 0xfeedface {
					t.Error("failed grow corrupted memory")
				}
			})
		}
	}
}

// TestGrowPastMaxLeavesStateIntact: a rejected grow must not move the
// size, the fast-path watermark, or the data.
func TestGrowPastMaxLeavesStateIntact(t *testing.T) {
	for _, s := range Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			m := newMem(t, s, 2, 4)
			m.StoreU64(0, 42)
			limit := m.fastLimit.Load()
			if got := m.Grow(3); got != -1 {
				t.Fatalf("grow(3) from 2/4: %d, want -1", got)
			}
			if m.SizePages() != 2 {
				t.Errorf("size %d after failed grow, want 2", m.SizePages())
			}
			if got := m.fastLimit.Load(); got != limit {
				t.Errorf("fastLimit moved %d -> %d on failed grow", limit, got)
			}
			if m.LoadU64(0) != 42 {
				t.Error("data lost on failed grow")
			}
		})
	}
}

// TestUffdPoolExhaustionFallback: with every pool acquisition failing
// (injected exhaustion), instantiation must degrade to the mprotect
// strategy — same trap semantics — and count each recovery.
func TestUffdPoolExhaustionFallback(t *testing.T) {
	as := injectedAS(faultinject.Plan{
		Seed: 1, Rate: 1, Sites: []faultinject.Site{faultinject.SitePoolGet},
	})
	pool := NewArenaPool()
	defer pool.Drain()
	const n = 5
	for i := 0; i < n; i++ {
		m, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool})
		if err != nil {
			t.Fatalf("instantiation %d not absorbed: %v", i, err)
		}
		if m.Strategy() != Mprotect {
			t.Fatalf("instantiation %d: strategy %v, want Mprotect fallback", i, m.Strategy())
		}
		m.StoreU64(100, uint64(i)+1)
		if m.LoadU64(100) != uint64(i)+1 {
			t.Error("fallback memory broken")
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.Created != 0 || st.Reused != 0 {
		t.Errorf("pool served arenas under total exhaustion: %+v", st)
	}
	if st := as.Injector().Stats(); st.Injects[faultinject.SitePoolGet] != n {
		t.Errorf("pool_get injections %d, want %d", st.Injects[faultinject.SitePoolGet], n)
	}
}

// TestPoolAcquireReleaseUnderIntermittentExhaustion hammers the
// acquire/release cycle with the pool failing half the time: every
// instantiation must succeed (uffd or fallback), the pool's books
// must balance, and both paths must actually be taken.
func TestPoolAcquireReleaseUnderIntermittentExhaustion(t *testing.T) {
	as := injectedAS(faultinject.Plan{
		Seed: 42, Rate: 0.5, Sites: []faultinject.Site{faultinject.SitePoolGet},
	})
	pool := NewArenaPool()
	defer pool.Drain()
	uffd, fellBack := 0, 0
	for i := 0; i < 40; i++ {
		m, err := New(Config{Strategy: Uffd, AS: as, MinPages: 1, MaxPages: 4, Pool: pool})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		m.StoreU64(uint64(i)*8, ^uint64(i))
		if m.LoadU64(uint64(i)*8) != ^uint64(i) {
			t.Fatalf("iteration %d: memory broken", i)
		}
		switch m.Strategy() {
		case Uffd:
			uffd++
		case Mprotect:
			fellBack++
		}
		if err := m.Close(); err != nil {
			t.Fatalf("iteration %d close: %v", i, err)
		}
	}
	if uffd == 0 || fellBack == 0 {
		t.Errorf("both paths should fire at rate 0.5: uffd=%d fallback=%d", uffd, fellBack)
	}
	st := pool.Stats()
	if got := st.Created + st.Reused; got != int64(uffd) {
		t.Errorf("pool served %d arenas (created %d + reused %d), want %d",
			got, st.Created, st.Reused, uffd)
	}
	if st.Returned != int64(uffd) {
		t.Errorf("returned %d arenas, want %d", st.Returned, uffd)
	}
}

// TestArenaDoubleRelease: returning the same arena twice is a
// lifetime bug the pool must reject, and a legitimate
// acquire/release/acquire cycle must re-arm the guard.
func TestArenaDoubleRelease(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	defer pool.Drain()
	a, err := pool.get(as, 4*wasm.PageSize, obs.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.put(a, wasm.PageSize); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if err := pool.put(a, wasm.PageSize); !errors.Is(err, ErrArenaDoubleRelease) {
		t.Fatalf("second put: %v, want ErrArenaDoubleRelease", err)
	}
	// Re-acquiring re-arms the guard.
	b, err := pool.get(as, 4*wasm.PageSize, obs.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatal("pool did not recycle the arena")
	}
	if err := pool.put(b, 0); err != nil {
		t.Fatalf("put after reacquire: %v", err)
	}
}

// TestArenaConcurrentDoubleRelease races several releases of one
// arena: exactly one wins, the rest see ErrArenaDoubleRelease, and
// nothing tears (run under -race).
func TestArenaConcurrentDoubleRelease(t *testing.T) {
	as := testAS()
	pool := NewArenaPool()
	defer pool.Drain()
	a, err := pool.get(as, 4*wasm.PageSize, obs.SpanRef{})
	if err != nil {
		t.Fatal(err)
	}
	const releasers = 8
	errs := make([]error, releasers)
	var wg sync.WaitGroup
	for i := 0; i < releasers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = pool.put(a, 0)
		}(i)
	}
	wg.Wait()
	ok, dup := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrArenaDoubleRelease):
			dup++
		default:
			t.Errorf("unexpected error: %v", err)
		}
	}
	if ok != 1 || dup != releasers-1 {
		t.Errorf("%d successful releases and %d rejections, want 1 and %d", ok, dup, releasers-1)
	}
}
