package mem

import (
	"fmt"
	"testing"
)

// benchMem builds a fully committed memory for hot-path load
// benchmarks: every page is touched up front so the VM strategies
// (mprotect/uffd) measure their steady-state fast path, not fault
// costs.
func benchMem(b *testing.B, s Strategy) *Memory {
	b.Helper()
	cfg := Config{Strategy: s, AS: testAS(), MinPages: 16, MaxPages: 16}
	if s == Uffd {
		cfg.Pool = NewArenaPool()
	}
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	m.Fill(0, 0, m.SizeBytes())
	return m
}

// The per-strategy load benchmarks time the checked fast path a
// compiled load closure reduces to (watermark compare + slice read),
// one sub-benchmark per strategy. `make bench-hot` runs them next to
// the elide on/off macro benchmarks so the per-access check cost and
// the whole-kernel win are visible side by side.

func BenchmarkLoadU8PerStrategy(b *testing.B) {
	for _, s := range Strategies() {
		b.Run(s.String(), func(b *testing.B) {
			m := benchMem(b, s)
			mask := m.SizeBytes() - 64
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += uint64(m.LoadU8((uint64(i) * 67) & mask))
			}
			keep(b, sink)
		})
	}
}

func BenchmarkLoadU32PerStrategy(b *testing.B) {
	for _, s := range Strategies() {
		b.Run(s.String(), func(b *testing.B) {
			m := benchMem(b, s)
			mask := m.SizeBytes() - 64
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += uint64(m.LoadU32((uint64(i) * 67) & mask))
			}
			keep(b, sink)
		})
	}
}

func BenchmarkLoadU64PerStrategy(b *testing.B) {
	for _, s := range Strategies() {
		b.Run(s.String(), func(b *testing.B) {
			m := benchMem(b, s)
			mask := m.SizeBytes() - 64
			var sink uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += m.LoadU64((uint64(i) * 67) & mask)
			}
			keep(b, sink)
		})
	}
}

// keep defeats dead-code elimination of the benchmark loop without
// the cost of a package-level sink store per iteration.
func keep(b *testing.B, v uint64) {
	if v == 1<<63 {
		b.Log(fmt.Sprint(v))
	}
}
