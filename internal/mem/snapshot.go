// Template snapshot and copy-on-write fork of linear memories.
//
// A Snapshot freezes one memory's wasm-visible state — contents up to
// the current size, plus the grow bookkeeping (size, min, max) — into
// an immutable vmm.PageSource. NewFromSnapshot instantiates a new
// Memory whose pages populate from that image instead of the zero
// page, through each strategy's own protection layout:
//
//	none/clamp/trap  eager: the RW mapping is touched over the full
//	                 size, duplicating every source page up front
//	                 (these strategies commit eagerly at instantiation
//	                 anyway, so the fork matches their layout)
//	mprotect         lazy: PROT_NONE reservation; the SIGSEGV handler
//	                 duplicates source pages as faults commit them
//	                 (EagerCommit forks commit+copy in one mprotect)
//	uffd             lazy: a pooled arena is borrowed and pointed at
//	                 the source; lock-free fault population installs
//	                 source pages instead of zero pages
//
// The virtual-memory strategies therefore defer page duplication to
// first write/access — true copy-on-write — while the software
// strategies fall back to an eager copy, keeping all five comparable
// exactly as instantiation itself does.
package mem

import (
	"fmt"
	"unsafe"

	"leapsandbounds/internal/faultinject"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// Snapshot is an immutable image of one memory's state, shareable by
// any number of forks and independent of the donor memory's lifetime
// (the donor may be closed, its arena recycled, before or after forks
// are made).
type Snapshot struct {
	src       *vmm.PageSource
	sizeBytes uint64
	minBytes  uint64
	maxBytes  uint64
}

// SizeBytes returns the wasm-visible size captured by the snapshot.
func (s *Snapshot) SizeBytes() uint64 { return s.sizeBytes }

// MaxPages returns the page limit captured by the snapshot.
func (s *Snapshot) MaxPages() uint32 { return uint32(s.maxBytes / wasm.PageSize) }

// Source exposes the frozen page image (for tests).
func (s *Snapshot) Source() *vmm.PageSource { return s.src }

// Snapshot freezes the memory's current state. The image is a copy:
// the donor can keep running, grow, or close without affecting it.
func (m *Memory) Snapshot() (*Snapshot, error) {
	if m.closed {
		return nil, fmt.Errorf("mem: snapshot of closed memory")
	}
	if m.shared {
		// A shared memory has racing writers by construction; a
		// mid-traffic copy would tear, and the threads proposal gives a
		// shared memory to every thread of the agent anyway — forking a
		// private duplicate has no sound semantics. Callers (Template
		// construction, Fork) must refuse.
		return nil, fmt.Errorf("mem: cannot snapshot a shared memory")
	}
	// Uncommitted pages of the lazy strategies hold zeros in the
	// backing slice — exactly their wasm-visible content — so one
	// contiguous copy of [0, sizeBytes) is correct for every strategy.
	size := m.sizeBytes.Load()
	return &Snapshot{
		src:       vmm.NewPageSource(m.mapping.PageSize(), m.data[:size]),
		sizeBytes: size,
		minBytes:  m.minBytes,
		maxBytes:  m.maxBytes,
	}, nil
}

// NewFromSnapshot instantiates a memory that forks snap: same
// wasm-visible size and contents (including past grows), with pages
// duplicated from the snapshot through the configured strategy's
// commit machinery. Config.MinPages/MaxPages are ignored — the
// snapshot's captured limits win, so a fork is always geometrically
// identical to its template.
func NewFromSnapshot(cfg Config, snap *Snapshot) (*Memory, error) {
	if cfg.AS == nil {
		return nil, fmt.Errorf("mem: Config.AS is required")
	}
	if snap == nil || snap.src == nil {
		return nil, fmt.Errorf("mem: nil snapshot")
	}
	sc := cfg.AS.Obs().Child("mem").Child(cfg.Strategy.String())
	m := &Memory{
		strategy:     cfg.Strategy,
		minBytes:     snap.minBytes,
		maxBytes:     snap.maxBytes,
		obs:          sc,
		growCalls:    sc.Counter("grows"),
		faultCommits: sc.Counter("fault_commits"),
		faultPages:   sc.Counter("fault_pages"),
		inj:          cfg.AS.Injector(),
	}
	m.sizeBytes.Store(snap.sizeBytes)
	sc.Counter("forks").Inc()
	switch cfg.Strategy {
	case None, Clamp, Trap:
		// Eager strategies can't defer the copy: the whole window is
		// RW from the start, so the fork duplicates the image at
		// instantiation via the first-touch path.
		mp, err := cfg.AS.MmapCoWTraced(Reserve, m.maxBytes, vmm.ProtRW, snap.src, cfg.Span)
		if err != nil {
			return nil, err
		}
		if size := m.sizeBytes.Load(); size > 0 {
			if err := mp.Touch(0, size); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
		}
		m.mapping = mp
		m.data = mp.Data()
		if cfg.Strategy == None {
			m.fastLimit.Store(mp.Backing())
		} else {
			m.fastLimit.Store(m.sizeBytes.Load())
		}
	case Mprotect:
		mp, err := cfg.AS.MmapCoWTraced(Reserve, m.maxBytes, vmm.ProtNone, snap.src, cfg.Span)
		if err != nil {
			return nil, err
		}
		m.mapping = mp
		m.data = mp.Data()
		m.eager = cfg.EagerCommit
		if size := m.sizeBytes.Load(); m.eager && size > 0 {
			if err := m.mprotectRetry(mp, 0, size); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
			m.fastLimit.Store(size)
			m.committedEnd.Store(size)
		}
	case Uffd:
		if cfg.DisablePool {
			mp, err := cfg.AS.MmapCoWTraced(Reserve, m.maxBytes, vmm.ProtNone, snap.src, cfg.Span)
			if err != nil {
				return nil, err
			}
			if err := mp.RegisterUffd(); err != nil {
				cleanup(cfg.AS, mp)
				return nil, err
			}
			m.mapping = mp
			m.data = mp.Data()
			if cfg.UffdPoll {
				// Pool-less instances own their handler thread, forked
				// or not; the shared-poller rule below applies to the
				// pooled deployment.
				m.poll = newUffdServer()
			}
			break
		}
		if cfg.Pool == nil {
			return nil, fmt.Errorf("mem: the uffd strategy requires an arena pool")
		}
		a, err := cfg.Pool.get(cfg.AS, m.maxBytes, cfg.Span)
		if err != nil {
			if site, ok := faultinject.IsTransient(err); ok {
				// Same degradation as New: pool exhaustion falls back to
				// the mprotect strategy, here with the source attached
				// so the fork still sees template contents.
				mp, merr := cfg.AS.MmapCoWTraced(Reserve, m.maxBytes, vmm.ProtNone, snap.src, cfg.Span)
				if merr != nil {
					return nil, merr
				}
				m.strategy = Mprotect
				m.mapping = mp
				m.data = mp.Data()
				sc.Counter("uffd_fallbacks").Inc()
				m.inj.Recovered(site)
				break
			}
			return nil, err
		}
		// The borrowed arena becomes a fork: its decommitted pages now
		// populate from the template image. pool.put clears the source
		// before the arena is parked, so recycling stays zero-fill for
		// the next plain instance.
		a.mapping.SetSource(snap.src)
		m.arena = a
		m.pool = cfg.Pool
		m.mapping = a.mapping
		m.data = a.mapping.Data()
		if cfg.UffdPoll {
			// Forks register with the pool's one handler thread; a
			// fork must never spawn a second poller for the process.
			m.poll = cfg.Pool.pollServer
		}
	default:
		return nil, fmt.Errorf("mem: unknown strategy %v", cfg.Strategy)
	}
	if len(m.data) > 0 {
		m.ptr = unsafe.Pointer(&m.data[0])
	}
	return m, nil
}
