package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"leapsandbounds/internal/obs"
)

func allPlan(seed int64, rate float64) Plan {
	return Plan{Seed: seed, Rate: rate, Sites: AllSites(), Delay: time.Microsecond}
}

// TestDecisionSequenceDeterministic is the replay contract: two
// injectors built from equal plans make identical per-site decision
// sequences.
func TestDecisionSequenceDeterministic(t *testing.T) {
	a := New(allPlan(42, 0.3), nil)
	b := New(allPlan(42, 0.3), nil)
	for s := 0; s < NumSites; s++ {
		for i := 0; i < 500; i++ {
			da, db := a.Should(Site(s)), b.Should(Site(s))
			if da != db {
				t.Fatalf("site %v decision %d: %v vs %v", Site(s), i, da, db)
			}
		}
	}
}

// TestSeedsDiffer: different seeds give different sequences (with
// overwhelming probability at 500 draws and rate 0.3).
func TestSeedsDiffer(t *testing.T) {
	a := New(allPlan(1, 0.3), nil)
	b := New(allPlan(2, 0.3), nil)
	same := true
	for i := 0; i < 500; i++ {
		if a.Should(SiteMprotect) != b.Should(SiteMprotect) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 500-draw sequences")
	}
}

// TestRateApproximation: the empirical rate tracks Plan.Rate.
func TestRateApproximation(t *testing.T) {
	for _, rate := range []float64{0.0, 0.1, 0.5, 1.0} {
		in := New(allPlan(7, rate), nil)
		fired := 0
		const n = 4000
		for i := 0; i < n; i++ {
			if in.Should(SiteUffdZero) {
				fired++
			}
		}
		got := float64(fired) / n
		if got < rate-0.05 || got > rate+0.05 {
			t.Errorf("rate %.2f: empirical %.3f", rate, got)
		}
	}
}

func TestDisabledSitesNeverFire(t *testing.T) {
	in := New(Plan{Seed: 3, Rate: 1.0, Sites: []Site{SiteMmap}}, nil)
	if !in.Should(SiteMmap) {
		t.Error("enabled site with rate 1.0 did not fire")
	}
	if in.Should(SiteGrow) || in.Fail(SiteMprotect) != nil || in.DelayIf(SiteUffdDelay) {
		t.Error("disabled site fired")
	}
	var nilInj *Injector
	if nilInj.Should(SiteMmap) || nilInj.Fail(SiteMmap) != nil || nilInj.GrowFail(1) {
		t.Error("nil injector fired")
	}
	nilInj.Recovered(SiteMmap) // must not panic
}

func TestFailReturnsTypedTransientError(t *testing.T) {
	in := New(Plan{Seed: 5, Rate: 1.0, Sites: []Site{SiteMprotect}}, nil)
	err := in.Fail(SiteMprotect)
	if err == nil {
		t.Fatal("rate-1.0 Fail returned nil")
	}
	site, ok := IsTransient(fmt.Errorf("wrapped: %w", err))
	if !ok || site != SiteMprotect {
		t.Fatalf("IsTransient = (%v, %v), want (mprotect, true)", site, ok)
	}
	if _, ok := IsTransient(errors.New("plain")); ok {
		t.Error("IsTransient matched a plain error")
	}
}

func TestGrowFailPages(t *testing.T) {
	in := New(Plan{Seed: 1, GrowFailPages: []uint32{4, 9}}, nil)
	for pages := uint32(1); pages <= 10; pages++ {
		want := pages == 4 || pages == 9
		if got := in.GrowFail(pages); got != want {
			t.Errorf("GrowFail(%d) = %v, want %v", pages, got, want)
		}
	}
	// Chosen page counts fire every time, not once.
	if !in.GrowFail(4) {
		t.Error("GrowFail(4) did not fire on repeat")
	}
}

func TestBudgetCapsInjections(t *testing.T) {
	p := allPlan(11, 1.0)
	p.Budget = 3
	in := New(p, nil)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Should(SiteMmap) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("budget 3: %d injections", fired)
	}
}

func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	sc := reg.Scope("faultinject")
	in := New(Plan{Seed: 2, Rate: 1.0, Sites: []Site{SiteUffdZero}}, sc)
	in.Should(SiteUffdZero)
	in.Should(SiteUffdZero)
	in.Recovered(SiteUffdZero)
	snap := reg.Snapshot(true)
	if got := snap.Counters["faultinject/inject_uffd_zero"]; got != 2 {
		t.Errorf("inject_uffd_zero = %d, want 2", got)
	}
	if got := snap.Counters["faultinject/recover_uffd_zero"]; got != 1 {
		t.Errorf("recover_uffd_zero = %d, want 1", got)
	}
	if got := snap.Counters["faultinject/injections"]; got != 2 {
		t.Errorf("injections = %d, want 2", got)
	}
	events := 0
	for _, ev := range snap.Events {
		if ev.Kind == "inject" || ev.Kind == "recover" {
			events++
		}
	}
	if events != 3 {
		t.Errorf("inject/recover events = %d, want 3", events)
	}
}

// TestConcurrentUse exercises the atomic counters under the race
// detector; per-site totals must balance.
func TestConcurrentUse(t *testing.T) {
	in := New(allPlan(9, 0.5), nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if in.Should(SiteFaultDrop) {
					in.Recovered(SiteFaultDrop)
				}
				_ = in.Fail(SiteMmap)
				in.GrowFail(uint32(i))
			}
		}()
	}
	wg.Wait()
	st := in.Stats()
	if st.Evals[SiteFaultDrop] != workers*per {
		t.Errorf("fault_drop evals = %d, want %d", st.Evals[SiteFaultDrop], workers*per)
	}
	if st.Injects[SiteFaultDrop] == 0 || st.Injects[SiteFaultDrop] >= workers*per {
		t.Errorf("fault_drop injects = %d out of plausible range", st.Injects[SiteFaultDrop])
	}
}

func TestDeriveChangesSeedOnly(t *testing.T) {
	p := allPlan(100, 0.25)
	d0, d1 := p.Derive(0), p.Derive(1)
	if d0.Seed == d1.Seed || d0.Seed == p.Seed {
		t.Errorf("derived seeds not distinct: base %d, d0 %d, d1 %d", p.Seed, d0.Seed, d1.Seed)
	}
	if d0.Rate != p.Rate || len(d0.Sites) != len(p.Sites) {
		t.Error("Derive changed non-seed fields")
	}
	// Deriving twice with the same shard is stable.
	if p.Derive(3).Seed != p.Derive(3).Seed {
		t.Error("Derive not deterministic")
	}
}
