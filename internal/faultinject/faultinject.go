// Package faultinject is the seed-deterministic fault-injection
// layer for the simulated memory-management stack. The paper's whole
// argument turns on what happens when a guarded access faults —
// SIGSEGV + mprotect repair, userfaultfd population, or a software
// check (§3.1, §5) — and those fault-delivery paths are exactly the
// code that only ever runs on the happy path in ordinary benchmarks.
// This package lets every strategy be driven through injected faults
// deterministically: transient mprotect/commit failures, delayed or
// dropped page-fault delivery, uffd arena-pool exhaustion and
// registry contention, and memory.grow failures at chosen page
// counts.
//
// Determinism contract: an injection decision for site s is a pure
// function of (Plan.Seed, s, n) where n is the number of prior
// evaluations of s. Single-threaded runs therefore replay
// byte-identically under the same plan; multi-threaded runs keep
// per-site sequences stable but interleave them by scheduling. The
// chaos regression tests and `leapsbench -chaos` rely on the
// single-threaded form.
//
// Every injection and every recovery (a retry or fallback that
// succeeded after an injected failure) is counted in the obs
// registry under the injector's scope, so a metrics dump attributes
// exactly which sites fired and which degradations absorbed them.
package faultinject

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"leapsandbounds/internal/obs"
)

// Site identifies one injectable fault site in the vmm/mem stack.
type Site uint8

// The injectable sites.
const (
	// SiteMmap: a transient mmap failure (the kernel's ENOMEM under
	// address-space pressure). Hit by instantiation and arena creation.
	SiteMmap Site = iota
	// SiteMprotect: a transient mprotect/commit failure. Hit by the
	// SIGSEGV repair path, eager-commit instantiation, and grow.
	SiteMprotect
	// SiteUffdZero: a transient UFFDIO_ZEROPAGE failure in the uffd
	// population path.
	SiteUffdZero
	// SiteUffdDelay: delayed fault delivery — the handler observes the
	// fault late (Plan.Delay of busy-wait before resolution).
	SiteUffdDelay
	// SiteFaultDrop: dropped fault delivery — the simulated kernel
	// loses the fault event and the access must re-fault.
	SiteFaultDrop
	// SitePoolGet: uffd arena-pool exhaustion — arena acquisition
	// fails as if no address space were left for a new reservation.
	SitePoolGet
	// SitePoolContention: arena-registry contention — pool operations
	// stall for Plan.Delay, as a contended registry would.
	SitePoolContention
	// SiteGrow: memory.grow fails (returns -1) even though the limit
	// would allow it, as a real allocator under commit pressure does.
	SiteGrow
	numSites
)

// NumSites is the number of distinct injection sites.
const NumSites = int(numSites)

var siteNames = [numSites]string{
	"mmap", "mprotect", "uffd_zero", "uffd_delay",
	"fault_drop", "pool_get", "pool_contention", "grow",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// AllSites lists every injectable site.
func AllSites() []Site {
	sites := make([]Site, NumSites)
	for i := range sites {
		sites[i] = Site(i)
	}
	return sites
}

// Error is the transient failure returned (or wrapped) by an
// injected fault. Recovery code treats it as retryable; everything
// else coming out of vmm is a genuine, permanent error.
type Error struct {
	Site Site
	// N is the 1-based occurrence number of the site when it fired,
	// so a failing run names the exact decision to replay.
	N int64
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: transient %s failure (injection #%d)", e.Site, e.N)
}

// IsTransient reports whether err is (or wraps) an injected
// transient fault, and if so which site fired.
func IsTransient(err error) (Site, bool) {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Site, true
	}
	return 0, false
}

// Plan configures deterministic injection. The zero value injects
// nothing.
type Plan struct {
	// Seed determines every injection decision; two runs with equal
	// plans make identical per-site decision sequences.
	Seed int64
	// Rate is the per-evaluation injection probability in [0, 1],
	// applied at every enabled site.
	Rate float64
	// Sites enables specific sites; an empty slice enables none (use
	// AllSites for full chaos).
	Sites []Site
	// GrowFailPages, when non-empty, restricts SiteGrow to fire only
	// when the grow would reach one of these page counts (and then it
	// always fires, independent of Rate) — "grow failures at chosen
	// page counts".
	GrowFailPages []uint32
	// Delay is the busy-wait charged by SiteUffdDelay and
	// SitePoolContention injections; defaults to 2µs.
	Delay time.Duration
	// Budget caps the total number of injections across all sites;
	// 0 means unlimited.
	Budget int64
}

// DefaultDelay is the delay charged when Plan.Delay is zero.
const DefaultDelay = 2 * time.Microsecond

// Injector evaluates a Plan at runtime. All methods are safe for
// concurrent use and nil-receiver safe (a nil injector never
// injects), so uninstrumented paths cost one branch.
type Injector struct {
	plan    Plan
	enabled [numSites]bool
	growSet map[uint32]bool

	evals   [numSites]atomic.Int64
	injects [numSites]atomic.Int64
	total   atomic.Int64

	obs        *obs.Scope
	injectCtrs [numSites]*obs.Counter
	recoverCtr [numSites]*obs.Counter
	injectAll  *obs.Counter
	recoverAll *obs.Counter
}

// New builds an injector for the plan, registering its counters
// under sc (inject_<site>, recover_<site>, injections, recoveries).
// A nil scope leaves the injector unobserved but functional.
func New(plan Plan, sc *obs.Scope) *Injector {
	if plan.Delay <= 0 {
		plan.Delay = DefaultDelay
	}
	in := &Injector{plan: plan, obs: sc}
	for _, s := range plan.Sites {
		if int(s) < NumSites {
			in.enabled[s] = true
		}
	}
	if len(plan.GrowFailPages) > 0 {
		in.growSet = make(map[uint32]bool, len(plan.GrowFailPages))
		for _, p := range plan.GrowFailPages {
			in.growSet[p] = true
		}
		in.enabled[SiteGrow] = true
	}
	for s := 0; s < NumSites; s++ {
		in.injectCtrs[s] = sc.Counter("inject_" + Site(s).String())
		in.recoverCtr[s] = sc.Counter("recover_" + Site(s).String())
	}
	in.injectAll = sc.Counter("injections")
	in.recoverAll = sc.Counter("recoveries")
	return in
}

// Plan returns the injector's plan (zero Plan for nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Enabled reports whether the site can fire at all.
func (in *Injector) Enabled(site Site) bool {
	return in != nil && int(site) < NumSites && in.enabled[site]
}

// splitmix64 is the SplitMix64 finalizer: a high-quality stateless
// mixer, so decision n for site s needs no per-site generator state
// beyond a counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// decide is the pure decision function: evaluation n of site s under
// seed fires iff a seeded hash lands below Rate.
func (in *Injector) decide(site Site, n int64) bool {
	h := splitmix64(uint64(in.plan.Seed)*0x9e3779b97f4a7c15 ^ uint64(site)<<56 ^ uint64(n))
	return float64(h>>11)/(1<<53) < in.plan.Rate
}

// Should evaluates the site once and reports whether to inject,
// counting the evaluation, the injection, and the site occurrence.
// The returned occurrence number is 1-based and identifies the
// decision for replay.
func (in *Injector) should(site Site) (int64, bool) {
	if !in.Enabled(site) {
		return 0, false
	}
	n := in.evals[site].Add(1)
	if !in.decide(site, n-1) {
		return n, false
	}
	if b := in.plan.Budget; b > 0 && in.total.Load() >= b {
		return n, false
	}
	in.total.Add(1)
	in.injects[site].Add(1)
	in.injectCtrs[site].Inc()
	in.injectAll.Inc()
	in.obs.Emit(obs.EvInject, int64(site), n)
	return n, true
}

// Should evaluates the site once and reports whether to inject.
func (in *Injector) Should(site Site) bool {
	_, fire := in.should(site)
	return fire
}

// Fail evaluates the site once and returns a transient *Error when
// it fires, nil otherwise.
func (in *Injector) Fail(site Site) error {
	n, fire := in.should(site)
	if !fire {
		return nil
	}
	return &Error{Site: site, N: n}
}

// DelayIf evaluates the site once and busy-waits Plan.Delay when it
// fires, reporting whether it did. Busy-waiting (not sleeping)
// matches the vmm cost model: the delayed handler occupies its CPU.
func (in *Injector) DelayIf(site Site) bool {
	_, fire := in.should(site)
	if !fire {
		return false
	}
	t0 := time.Now()
	for time.Since(t0) < in.plan.Delay {
	}
	return true
}

// GrowFail evaluates SiteGrow for a grow that would reach newPages,
// honouring GrowFailPages when set.
func (in *Injector) GrowFail(newPages uint32) bool {
	if !in.Enabled(SiteGrow) {
		return false
	}
	if in.growSet != nil {
		if !in.growSet[newPages] {
			return false
		}
		n := in.evals[SiteGrow].Add(1)
		in.injects[SiteGrow].Add(1)
		in.injectCtrs[SiteGrow].Inc()
		in.injectAll.Inc()
		in.total.Add(1)
		in.obs.Emit(obs.EvInject, int64(SiteGrow), n)
		return true
	}
	return in.Should(SiteGrow)
}

// Recovered records that a degradation path (retry, fallback)
// absorbed an injected failure at the site.
func (in *Injector) Recovered(site Site) {
	if in == nil || int(site) >= NumSites {
		return
	}
	in.recoverCtr[site].Inc()
	in.recoverAll.Inc()
	in.obs.Emit(obs.EvRecover, int64(site), in.injects[site].Load())
}

// Stats is a plain-value snapshot of per-site activity.
type Stats struct {
	Evals, Injects [NumSites]int64
	Total          int64
}

// Stats snapshots the injector's counters (zero value for nil).
func (in *Injector) Stats() Stats {
	var s Stats
	if in == nil {
		return s
	}
	for i := 0; i < NumSites; i++ {
		s.Evals[i] = in.evals[i].Load()
		s.Injects[i] = in.injects[i].Load()
	}
	s.Total = in.total.Load()
	return s
}

// Derive returns a copy of the plan with a per-shard seed, so each
// simulated process in a multi-process run gets an independent but
// replayable decision stream.
func (p Plan) Derive(shard int64) Plan {
	d := p
	d.Seed = int64(splitmix64(uint64(p.Seed) + uint64(shard)*0xd1b54a32d192ed03))
	return d
}
