// Package figures regenerates every table and figure of the paper's
// evaluation section (§4) from the simulated system: each FigN
// function runs the relevant slice of the engine × strategy × ISA ×
// thread-count matrix through the harness and prints the same rows
// or series the paper plots. EXPERIMENTS.md records the mapping and
// the paper-vs-measured comparison.
package figures

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"leapsandbounds/internal/harness"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/prof"
	"leapsandbounds/internal/stats"
	"leapsandbounds/internal/workloads"
)

// Config controls figure regeneration.
type Config struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Class selects problem sizes (Bench by default).
	Class workloads.Class
	// Quick restricts workloads to a representative subset and
	// reduces iteration counts, for smoke runs.
	Quick bool
	// Measure and Warmup override per-thread iteration counts
	// (0 = defaults: 8/2, or 3/1 in Quick mode).
	Measure, Warmup int
	// MaxThreads caps the thread axis (defaults to the paper's 16,
	// bounded by the host's CPU count).
	MaxThreads int
	// Metrics, when non-nil, collects every run's counters,
	// histograms and trace events under per-run labeled scopes
	// (see harness.Options.Obs); leapsbench -metrics wires it.
	Metrics *obs.Registry
	// Prof, when non-nil, samples every guest run into the given
	// profiler (see harness.Options.Prof); leapsbench -profile and
	// -serve wire it.
	Prof *prof.Profiler
	// Parallel schedules each figure's configurations through
	// harness.RunSweep instead of running them serially: the
	// single-isolate runs (figures 1 and 2) pack onto a worker pool,
	// while thread-scaling runs (figures 3-5) keep the host to
	// themselves. Figure values are unaffected — results come back in
	// input order and shareable runs measure per-iteration latency of
	// one isolate, not machine-wide throughput.
	Parallel bool
}

func (c *Config) defaults() {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Measure == 0 {
		if c.Quick {
			c.Measure = 3
		} else {
			c.Measure = 8
		}
	}
	if c.Warmup == 0 {
		c.Warmup = 1
		if !c.Quick {
			c.Warmup = 2
		}
	}
	if c.MaxThreads == 0 {
		// The paper's axis is 1/4/16 threads on 16-core hosts. On
		// smaller hosts, keep at least 4 workers: mprotect-lock
		// serialization (the effect under study) appears with any
		// concurrent instance churn, oversubscribed or not.
		c.MaxThreads = min(16, max(4, runtime.NumCPU()))
	}
}

// suiteWorkloads returns the figure's workload set.
func (c *Config) suiteWorkloads(suite string) []workloads.Spec {
	all := workloads.Suite(suite)
	if !c.Quick {
		return all
	}
	quick := map[string]bool{
		"gemm": true, "cholesky": true, "atax": true, "jacobi-2d": true,
		"505.mcf": true, "557.xz": true, "519.lbm": true,
	}
	var out []workloads.Spec
	for _, s := range all {
		if quick[s.Name] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = all[:min(2, len(all))]
	}
	return out
}

// run executes one configuration, failing loudly: a figure with a
// hole is worse than an error.
func (c *Config) run(opts harness.Options) (*harness.Result, error) {
	opts.Class = c.Class
	if opts.Measure == 0 {
		opts.Measure = c.Measure
	}
	if opts.Warmup == 0 {
		opts.Warmup = c.Warmup
	}
	opts.Obs = c.Metrics
	opts.Prof = c.Prof
	return harness.Run(opts)
}

// runBatch executes a figure's configurations and returns results in
// input order, failing on the first error. With c.Parallel the batch
// goes through the sweep scheduler (shareable runs pack, exclusive
// runs serialize); otherwise it runs serially in input order, which
// is byte-for-byte the old per-call behaviour.
func (c *Config) runBatch(optss []harness.Options) ([]*harness.Result, error) {
	for i := range optss {
		optss[i].Class = c.Class
		if optss[i].Measure == 0 {
			optss[i].Measure = c.Measure
		}
		if optss[i].Warmup == 0 {
			optss[i].Warmup = c.Warmup
		}
		optss[i].Obs = c.Metrics
		optss[i].Prof = c.Prof
	}
	sres, err := harness.RunSweep(harness.SweepOf(optss...),
		harness.SweepOptions{Serial: !c.Parallel, Obs: c.Metrics})
	if err != nil {
		return nil, err
	}
	out := make([]*harness.Result, len(sres))
	for i := range sres {
		out[i] = sres[i].Result
	}
	return out, nil
}

// nativeAdvantage is the single calibration constant of the cycle
// model: the paper's x86-64 gap between WAVM (no checks) and native
// Clang is about 8%; the simulated-native baseline is defined as the
// optimized wasm op stream discounted by this factor. It is the same
// constant for every ISA, engine and strategy, so it cancels out of
// all strategy-vs-strategy and engine-vs-engine comparisons.
const nativeAdvantage = 1.08

// Fig1 regenerates Figure 1: the per-benchmark cost of bounds
// checking on the V8 analog, x86-64, normalized to the same engine
// with checks disabled. Two ratios are reported:
//
//   - "check ratio" (cycle model, explicit checks vs none): the
//     codegen-level cost of checking every access, which is what
//     produces the paper's 20-220% per-benchmark spread — benchmarks
//     differ in their memory-access density;
//   - "vm ratio" (wall, mprotect vs none): the fault/commit-path
//     cost of the virtual-memory default, small for single-threaded
//     runs exactly as the paper's §4.1 finds (1-2 percentage
//     points).
func Fig1(c Config) error {
	c.defaults()
	fmt.Fprintf(c.Out, "Figure 1: cost of bounds checking per benchmark (V8 analog, x86_64)\n")
	fmt.Fprintf(c.Out, "%-14s %-10s %12s %12s %12s %12s\n",
		"benchmark", "suite", "none", "mprotect", "vm ratio", "check ratio")

	prof := isa.X86_64()
	var wls []workloads.Spec
	var optss []harness.Options
	for _, suite := range []string{"polybench", "spec"} {
		for _, wl := range c.suiteWorkloads(suite) {
			wls = append(wls, wl)
			optss = append(optss,
				// Wall-clock pair, both without cycle accounting (the
				// counting loop would bias whichever side carries it).
				harness.Options{Engine: harness.EngineV8, Workload: wl,
					Strategy: mem.None, Profile: prof},
				harness.Options{Engine: harness.EngineV8, Workload: wl,
					Strategy: mem.Mprotect, Profile: prof},
				// Cycle-model pair for the codegen-level check cost.
				harness.Options{Engine: harness.EngineV8, Workload: wl,
					Strategy: mem.None, Profile: prof, CountCycles: true},
				harness.Options{Engine: harness.EngineV8, Workload: wl,
					Strategy: mem.Trap, Profile: prof, CountCycles: true})
		}
	}
	res, err := c.runBatch(optss)
	if err != nil {
		return err
	}
	for i, wl := range wls {
		noneWall, mp, noneSim, checked := res[4*i], res[4*i+1], res[4*i+2], res[4*i+3]
		vmRatio := float64(mp.MedianWall) / float64(noneWall.MedianWall)
		checkRatio := float64(checked.MedianSimTime) / float64(noneSim.MedianSimTime)
		fmt.Fprintf(c.Out, "%-14s %-10s %12v %12v %12.3f %12.3f\n",
			wl.Name, wl.Suite, noneWall.MedianWall.Round(time.Microsecond),
			mp.MedianWall.Round(time.Microsecond), vmRatio, checkRatio)
	}
	return nil
}

// fig2Engines returns the engines evaluated per ISA: the paper could
// not run WAVM or Wasmtime on RISC-V (§3.4).
func fig2Engines(profile *isa.Profile) []string {
	if profile.Name == "riscv64" {
		return []string{harness.EngineWasm3, harness.EngineV8}
	}
	return harness.WasmEngineNames()
}

// Fig2 regenerates Figures 2a/2b/2c: the geometric mean of
// per-benchmark median execution-time ratios against the native
// baseline, per engine × strategy, on each ISA. Two baselines are
// reported: wall time against the real native Go twin, and the
// cycle-model time against the simulated native baseline (see
// nativeAdvantage).
func Fig2(c Config) error {
	c.defaults()
	for _, prof := range isa.Profiles() {
		suites := []string{"polybench", "spec"}
		if prof.Name == "riscv64" {
			suites = []string{"polybench"} // paper: 1 GiB board, PBC only
		}
		for _, suite := range suites {
			if err := fig2Panel(c, prof, suite); err != nil {
				return err
			}
		}
	}
	return nil
}

func fig2Panel(c Config, prof *isa.Profile, suite string) error {
	wls := c.suiteWorkloads(suite)
	fmt.Fprintf(c.Out, "\nFigure 2 (%s, %s): geomean of medians vs native\n", prof.Name, suite)
	fmt.Fprintf(c.Out, "(wall ratios: every wasm run carries cycle accounting, so rows compare fairly with each other but carry a uniform counting overhead against the native wall baseline)\n")
	fmt.Fprintf(c.Out, "%-10s %-10s %14s %14s\n", "engine", "strategy", "wall ratio", "sim ratio")

	// One batch holds the two baselines and the whole engine ×
	// strategy matrix: native wall per workload, then the simulated-
	// native baseline (the optimized wavm op stream, no checks), then
	// one block of len(wls) runs per matrix cell.
	var optss []harness.Options
	for _, wl := range wls {
		optss = append(optss, harness.Options{
			Engine: harness.EngineNative, Workload: wl, Profile: prof})
	}
	for _, wl := range wls {
		optss = append(optss, harness.Options{
			Engine: harness.EngineWAVM, Workload: wl,
			Strategy: mem.None, Profile: prof, CountCycles: true})
	}
	type cell struct {
		eng string
		s   mem.Strategy
	}
	var cells []cell
	for _, eng := range fig2Engines(prof) {
		strategies := mem.Strategies()
		if eng == harness.EngineWasm3 {
			strategies = []mem.Strategy{mem.Trap} // wasm3 is trap-only (paper §3.2)
		}
		for _, s := range strategies {
			cells = append(cells, cell{eng, s})
			for _, wl := range wls {
				optss = append(optss, harness.Options{
					Engine: eng, Workload: wl,
					Strategy: s, Profile: prof, CountCycles: true})
			}
		}
	}
	res, err := c.runBatch(optss)
	if err != nil {
		return err
	}

	nativeWall := make([]float64, len(wls))
	nativeSim := make([]float64, len(wls))
	for i := range wls {
		nativeWall[i] = float64(res[i].MedianWall)
		nativeSim[i] = float64(res[len(wls)+i].MedianSimTime) / nativeAdvantage
	}
	cursor := 2 * len(wls)
	for _, cl := range cells {
		wall := make([]float64, len(wls))
		sim := make([]float64, len(wls))
		for i := range wls {
			wall[i] = float64(res[cursor+i].MedianWall)
			sim[i] = float64(res[cursor+i].MedianSimTime)
		}
		cursor += len(wls)
		wallRatio := stats.GeomeanRatios(wall, nativeWall)
		simRatio := stats.GeomeanRatios(sim, nativeSim)
		fmt.Fprintf(c.Out, "%-10s %-10s %14.3f %14.3f\n", cl.eng, cl.s, wallRatio, simRatio)
	}
	return nil
}

// threadAxis returns the paper's 1/4/16 thread counts bounded by the
// host configuration.
func (c *Config) threadAxis() []int {
	axis := []int{1}
	mid := min(4, c.MaxThreads)
	if mid > 1 {
		axis = append(axis, mid)
	}
	if c.MaxThreads > mid {
		axis = append(axis, c.MaxThreads)
	}
	return axis
}

// scalingRow holds one engine × strategy series over thread counts.
type scalingRow struct {
	engine   string
	strategy mem.Strategy
	results  []*harness.Result
}

// runScaling executes the thread-scaling matrix shared by Figures
// 3, 4 and 5 (the paper collects them from the same runs).
func runScaling(c Config, suite string) ([]int, []scalingRow, error) {
	wls := c.suiteWorkloads(suite)
	if c.Quick && len(wls) > 2 {
		wls = wls[:2]
	}
	axis := c.threadAxis()
	engines := []string{harness.EngineWAVM, harness.EngineWasmtime, harness.EngineV8}
	strategies := []mem.Strategy{mem.None, mem.Trap, mem.Mprotect, mem.Uffd}
	// One batch for the whole matrix. The multi-threaded entries are
	// exclusive (the scheduler serializes them — they measure
	// contention); the 1-thread entries pack.
	var optss []harness.Options
	for _, eng := range engines {
		for _, s := range strategies {
			for _, threads := range axis {
				for _, wl := range wls {
					optss = append(optss, harness.Options{
						Engine: eng, Workload: wl,
						Strategy: s, Profile: isa.X86_64(), Threads: threads,
					})
				}
			}
		}
	}
	res, err := c.runBatch(optss)
	if err != nil {
		return nil, nil, err
	}
	var rows []scalingRow
	cursor := 0
	for _, eng := range engines {
		for _, s := range strategies {
			row := scalingRow{engine: eng, strategy: s}
			for range axis {
				// Aggregate throughput over the suite subset: sum
				// normalized throughput across workloads.
				var agg *harness.Result
				for range wls {
					r := res[cursor]
					cursor++
					if agg == nil {
						agg = r
					} else {
						agg.Throughput += r.Throughput
						agg.CPUPercent += r.CPUPercent
						agg.CtxtPerSec += r.CtxtPerSec
						agg.VM.LockWaitNs += r.VM.LockWaitNs
						agg.VM.MprotectCalls += r.VM.MprotectCalls
						agg.VM.UffdFaults += r.VM.UffdFaults
					}
				}
				agg.CPUPercent /= float64(len(wls))
				agg.CtxtPerSec /= float64(len(wls))
				row.results = append(row.results, agg)
			}
			rows = append(rows, row)
		}
	}
	return axis, rows, nil
}

// Fig3 regenerates Figures 3a/3b: performance scaling with thread
// count (throughput per thread normalized to the single-thread run).
func Fig3(c Config) error {
	c.defaults()
	for _, suite := range []string{"polybench", "spec"} {
		axis, rows, err := runScaling(c, suite)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "\nFigure 3 (%s): scaling efficiency vs threads (x86_64)\n", suite)
		fmt.Fprintf(c.Out, "%-10s %-10s", "engine", "strategy")
		for _, t := range axis {
			fmt.Fprintf(c.Out, " %8dT", t)
		}
		fmt.Fprintf(c.Out, " %14s\n", "lockwait@max")
		for _, row := range rows {
			fmt.Fprintf(c.Out, "%-10s %-10s", row.engine, row.strategy)
			base := row.results[0].Throughput
			for i, res := range row.results {
				eff := 0.0
				if base > 0 {
					eff = res.Throughput / (base * float64(axis[i]))
				}
				fmt.Fprintf(c.Out, " %8.2f", eff)
			}
			last := row.results[len(row.results)-1]
			fmt.Fprintf(c.Out, " %14v\n", time.Duration(last.VM.LockWaitNs).Round(time.Microsecond))
		}
	}
	return nil
}

// Fig4 regenerates Figures 4a-4d: average CPU utilization during
// execution, single-threaded and fully-threaded.
func Fig4(c Config) error {
	c.defaults()
	axis, rows, err := runScaling(c, "polybench")
	if err != nil {
		return err
	}
	fmt.Fprintf(c.Out, "\nFigure 4 (polybench): avg CPU utilization %% (100%% = one core)\n")
	fmt.Fprintf(c.Out, "%-10s %-10s", "engine", "strategy")
	for _, t := range axis {
		fmt.Fprintf(c.Out, " %9dT", t)
	}
	fmt.Fprintf(c.Out, "\n")
	for _, row := range rows {
		fmt.Fprintf(c.Out, "%-10s %-10s", row.engine, row.strategy)
		for _, res := range row.results {
			fmt.Fprintf(c.Out, " %9.0f%%", res.CPUPercent)
		}
		fmt.Fprintf(c.Out, "\n")
	}
	if len(rows) > 0 && !rows[0].results[0].SysmonOK {
		fmt.Fprintf(c.Out, "(host counters unavailable: utilization derived from simulated mmap-lock blocking)\n")
	}
	return nil
}

// Fig5 regenerates Figures 5a/5b: context switches per second, with
// the simulated kernel's lock-wait time as the mechanism column.
func Fig5(c Config) error {
	c.defaults()
	axis, rows, err := runScaling(c, "polybench")
	if err != nil {
		return err
	}
	fmt.Fprintf(c.Out, "\nFigure 5 (polybench): context switches/s and mmap-lock wait\n")
	fmt.Fprintf(c.Out, "%-10s %-10s", "engine", "strategy")
	for _, t := range axis {
		fmt.Fprintf(c.Out, " %10dT", t)
	}
	fmt.Fprintf(c.Out, " %14s\n", "lockwait@max")
	for _, row := range rows {
		fmt.Fprintf(c.Out, "%-10s %-10s", row.engine, row.strategy)
		for _, res := range row.results {
			fmt.Fprintf(c.Out, " %11.0f", res.CtxtPerSec)
		}
		last := row.results[len(row.results)-1]
		fmt.Fprintf(c.Out, " %14v\n", time.Duration(last.VM.LockWaitNs).Round(time.Microsecond))
	}
	if len(rows) > 0 && !rows[0].results[0].SysmonOK {
		fmt.Fprintf(c.Out, "(host counters unavailable: rate derived from contended simulated-lock acquisitions)\n")
	}
	return nil
}

// Fig6 regenerates Figures 6a/6b: average memory usage per runtime ×
// strategy, on the x86-64 profile (1 GiB transparent huge pages) and
// the Armv8 profile (2 MiB), exposing the THP artifact the paper
// explains in §4.3.
func Fig6(c Config) error {
	c.defaults()
	engines := []string{harness.EngineWAVM, harness.EngineWasmtime, harness.EngineV8}
	strategies := []mem.Strategy{mem.None, mem.Trap, mem.Mprotect, mem.Uffd}
	wls := c.suiteWorkloads("polybench")
	for _, prof := range []*isa.Profile{isa.X86_64(), isa.ARMv8()} {
		var optss []harness.Options
		for _, eng := range engines {
			for _, s := range strategies {
				for _, wl := range wls {
					optss = append(optss, harness.Options{
						Engine: eng, Workload: wl, Strategy: s, Profile: prof, Threads: 2,
					})
				}
			}
		}
		res, err := c.runBatch(optss)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "\nFigure 6 (%s): average simulated resident memory (polybench)\n", prof.Name)
		fmt.Fprintf(c.Out, "%-10s %-10s %14s %14s %8s\n",
			"engine", "strategy", "mean", "peak", "THP")
		cursor := 0
		for _, eng := range engines {
			for _, s := range strategies {
				var mean, peak, thp int64
				for range wls {
					r := res[cursor]
					cursor++
					mean += r.ResidentMean
					if r.ResidentPeak > peak {
						peak = r.ResidentPeak
					}
					thp += r.VM.THPPromotions
				}
				mean /= int64(len(wls))
				fmt.Fprintf(c.Out, "%-10s %-10s %14s %14s %8d\n",
					eng, s, fmtBytes(mean), fmtBytes(peak), thp)
			}
		}
	}
	return nil
}

// Replication regenerates the §4.4 comparisons with prior work: the
// Wasm3-vs-V8 interpreter gap (Titzer 2022), the PolyBench
// near-native distribution (Rossberg et al. 2018) and the SPEC
// geomean slowdown (Jangda et al. 2019).
func Replication(c Config) error {
	c.defaults()
	prof := isa.X86_64()

	// Wasm3 vs V8 on PolyBench (Titzer 2022: roughly 10x; the paper
	// measures 6-11x). Engine-vs-engine codegen gaps live in the
	// cycle model; the wall-clock gap between a Go switch
	// interpreter and Go closure code is structurally compressed.
	wls := c.suiteWorkloads("polybench")
	var optss []harness.Options
	for _, wl := range wls {
		optss = append(optss,
			harness.Options{Engine: harness.EngineWasm3, Workload: wl,
				Strategy: mem.Trap, Profile: prof, CountCycles: true},
			harness.Options{Engine: harness.EngineV8, Workload: wl,
				Strategy: mem.Mprotect, Profile: prof, CountCycles: true})
	}
	res, err := c.runBatch(optss)
	if err != nil {
		return err
	}
	var simRatios, wallRatios []float64
	for i := range wls {
		w3, v8 := res[2*i], res[2*i+1]
		simRatios = append(simRatios, float64(w3.MedianSimTime)/float64(v8.MedianSimTime))
		wallRatios = append(wallRatios, float64(w3.MedianWall)/float64(v8.MedianWall))
	}
	fmt.Fprintf(c.Out, "\nReplication (§4.4):\n")
	fmt.Fprintf(c.Out, "wasm3 vs v8 on PolyBench: geomean %.1fx sim, %.1fx wall (paper: 6-11x)\n",
		stats.Geomean(simRatios), stats.Geomean(wallRatios))

	// SPEC slowdown vs native on V8 (Jangda et al.: 1.55x; the paper
	// measures 1.69x on x86-64).
	specWls := c.suiteWorkloads("spec")
	optss = optss[:0]
	for _, wl := range specWls {
		optss = append(optss,
			harness.Options{Engine: harness.EngineV8, Workload: wl,
				Strategy: mem.Mprotect, Profile: prof, CountCycles: true},
			harness.Options{Engine: harness.EngineWAVM, Workload: wl,
				Strategy: mem.None, Profile: prof, CountCycles: true},
			harness.Options{Engine: harness.EngineNative, Workload: wl,
				Profile: prof})
	}
	res, err = c.runBatch(optss)
	if err != nil {
		return err
	}
	var v8Sim, natSim, v8Wall, natWall []float64
	for i := range specWls {
		v8, simNat, nat := res[3*i], res[3*i+1], res[3*i+2]
		v8Sim = append(v8Sim, float64(v8.MedianSimTime))
		natSim = append(natSim, float64(simNat.MedianSimTime)/nativeAdvantage)
		v8Wall = append(v8Wall, float64(v8.MedianWall))
		natWall = append(natWall, float64(nat.MedianWall))
	}
	fmt.Fprintf(c.Out, "v8 vs native on SPEC: geomean %.2fx sim (paper: 1.69x on x86_64), %.1fx wall (vs the Go-compiled twin; structurally larger for a closure engine)\n",
		stats.GeomeanRatios(v8Sim, natSim), stats.GeomeanRatios(v8Wall, natWall))

	// PolyBench distribution vs native on the fastest engine.
	optss = optss[:0]
	for _, wl := range wls {
		optss = append(optss,
			harness.Options{Engine: harness.EngineWAVM, Workload: wl,
				Strategy: mem.Mprotect, Profile: prof, CountCycles: true},
			harness.Options{Engine: harness.EngineWAVM, Workload: wl,
				Strategy: mem.None, Profile: prof, CountCycles: true})
	}
	res, err = c.runBatch(optss)
	if err != nil {
		return err
	}
	within10, within2x := 0, 0
	for i := range wls {
		wv, nat := res[2*i], res[2*i+1]
		r := float64(wv.MedianSimTime) / (float64(nat.MedianSimTime) / nativeAdvantage)
		if r <= 1.10 {
			within10++
		}
		if r <= 2.0 {
			within2x++
		}
	}
	fmt.Fprintf(c.Out, "PolyBench (wavm/mprotect) sim vs native: %d/%d within 10%%, %d/%d within 2x\n",
		within10, len(wls), within2x, len(wls))
	fmt.Fprintf(c.Out, "  (Rossberg et al. 2018 measured 2017-era V8: seven benchmarks within 10%%, nearly all within 2x; an optimizing AOT tier with VM-backed checks lands uniformly near-native, consistent with the paper's finding that performance-oriented runtimes have since approached native)\n")
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
