package figures_test

import (
	"bytes"
	"strings"
	"testing"

	"leapsandbounds/internal/figures"
	"leapsandbounds/internal/workloads"
)

func quickCfg(out *bytes.Buffer) figures.Config {
	return figures.Config{
		Out:        out,
		Class:      workloads.Test,
		Quick:      true,
		Measure:    2,
		Warmup:     1,
		MaxThreads: 2,
	}
}

func TestFig1(t *testing.T) {
	var out bytes.Buffer
	if err := figures.Fig1(quickCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 1", "gemm", "mprotect", "ratio"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("full engine matrix")
	}
	var out bytes.Buffer
	if err := figures.Fig2(quickCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// All three ISA panels present.
	for _, want := range []string{"x86_64", "aarch64", "riscv64", "wavm", "wasm3", "sim ratio"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The RISC-V panel must not list the engines the paper could not
	// run there.
	rv := s[strings.Index(s, "riscv64"):]
	if strings.Contains(rv, "wavm") || strings.Contains(rv, "wasmtime") {
		t.Error("riscv64 panel lists engines without RISC-V backends")
	}
}

func TestFig3Through5ShareScalingMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling matrix")
	}
	var out bytes.Buffer
	cfg := quickCfg(&out)
	if err := figures.Fig3(cfg); err != nil {
		t.Fatal(err)
	}
	if err := figures.Fig4(cfg); err != nil {
		t.Fatal(err)
	}
	if err := figures.Fig5(cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 3", "Figure 4", "Figure 5", "lockwait@max", "uffd", "mprotect"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("memory matrix")
	}
	var out bytes.Buffer
	if err := figures.Fig6(quickCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "x86_64") || !strings.Contains(s, "aarch64") {
		t.Errorf("missing ISA panels:\n%s", s)
	}
	if !strings.Contains(s, "THP") {
		t.Error("missing THP column")
	}
}

func TestReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("replication matrix")
	}
	var out bytes.Buffer
	if err := figures.Replication(quickCfg(&out)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"wasm3 vs v8", "SPEC", "within 10%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
