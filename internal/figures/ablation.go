package figures

import (
	"fmt"
	"time"

	"leapsandbounds/internal/harness"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/workloads"
)

// Ablation isolates the design choices behind the paper's uffd
// mitigation and the simulated kernel's cost parameters:
//
//  1. arena pooling: uffd with and without the hazard-pointer arena
//     pool, against mprotect — showing that lock-free fault handling
//     alone does not remove the mmap-lock bottleneck; the userspace
//     arena management is the other half of the mitigation;
//  2. TLB shootdown cost: mprotect scaling as the simulated IPI cost
//     sweeps from zero to 4x, demonstrating that the contention
//     effect is lock-hold-time driven;
//  3. transparent huge pages: resident memory with THP off, 2 MiB
//     and 1 GiB, isolating Figure 6's artifact.
func Ablation(c Config) error {
	c.defaults()
	if err := ablatePooling(c); err != nil {
		return err
	}
	if err := ablateShootdown(c); err != nil {
		return err
	}
	if err := ablateMultiprocess(c); err != nil {
		return err
	}
	if err := ablateUffdDelivery(c); err != nil {
		return err
	}
	if err := ablateCommitGranularity(c); err != nil {
		return err
	}
	if err := ablateTHP(c); err != nil {
		return err
	}
	if err := ablateElision(c); err != nil {
		return err
	}
	if err := ablateRegisterIR(c); err != nil {
		return err
	}
	return ablateHostcall(c)
}

// ablateHostcall measures the host boundary: the syscall-heavy wasi
// workloads per strategy, with the hostcall count from the simulated
// process's counters. The checksum column proves the boundary is
// strategy-transparent (identical results while the eager-copy
// strategies pay per-view copies and the virtual-memory strategies
// fault pages in under the view's bulk check).
func ablateHostcall(c Config) error {
	fmt.Fprintf(c.Out, "\nAblation 9: hostcall boundary (wasi workloads, wavm, 1 thread)\n")
	fmt.Fprintf(c.Out, "%-10s %-10s %12s %10s %18s\n",
		"benchmark", "strategy", "median", "hostcalls", "checksum")
	for _, wl := range workloads.Suite("wasi") {
		for _, s := range mem.Strategies() {
			res, err := c.run(harness.Options{
				Engine: harness.EngineWAVM, Workload: wl,
				Strategy: s, Profile: isa.X86_64(),
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(c.Out, "%-10s %-10s %12v %10d %#18x\n",
				wl.Name, s, res.MedianWall.Round(time.Microsecond),
				res.VM.Hostcalls, res.Checksum)
		}
	}
	return nil
}

// ablateRegisterIR measures the stack→register lowering on the
// optimizing engine: the same kernels with the recompile tier's
// register IR off and on, per strategy, with elision at the engine
// default in both arms so only the lowering moves. The win is
// dispatch-count driven — dead push/pop elimination and compare+
// branch / load+op fusion shrink the op stream — so unlike elision
// it shows up under every strategy.
func ablateRegisterIR(c Config) error {
	fmt.Fprintf(c.Out, "\nAblation 8: register-IR lowering (wavm, 1 thread)\n")
	fmt.Fprintf(c.Out, "%-10s %-10s %12s %12s %9s\n",
		"benchmark", "strategy", "rir=off", "rir=on", "speedup")
	for _, name := range []string{"gemm", "atax"} {
		wl, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, s := range []mem.Strategy{mem.Trap, mem.Mprotect} {
			var wall [2]time.Duration
			for i, noRIR := range []bool{true, false} {
				res, err := c.run(harness.Options{
					Engine: harness.EngineWAVM, Workload: wl,
					Strategy: s, Profile: isa.X86_64(), NoRIR: noRIR,
				})
				if err != nil {
					return err
				}
				wall[i] = res.MedianWall
			}
			fmt.Fprintf(c.Out, "%-10s %-10s %12v %12v %8.2fx\n",
				name, s,
				wall[0].Round(time.Microsecond), wall[1].Round(time.Microsecond),
				float64(wall[0])/float64(wall[1]))
		}
	}
	return nil
}

// ablateElision measures the bounds-check elision pass on the
// optimizing engine: the same kernels with the pass on and off, per
// strategy. The win concentrates in the explicit-check strategies
// (trap, and none's watermark arithmetic); clamp never elides — its
// redirect semantics depend on per-access clamping — so its rows are
// the no-op control.
func ablateElision(c Config) error {
	fmt.Fprintf(c.Out, "\nAblation 7: bounds-check elision (wavm, 1 thread)\n")
	fmt.Fprintf(c.Out, "%-10s %-10s %12s %12s %9s\n",
		"benchmark", "strategy", "elide=off", "elide=on", "speedup")
	for _, name := range []string{"gemm", "atax"} {
		wl, err := workloads.ByName(name)
		if err != nil {
			return err
		}
		for _, s := range []mem.Strategy{mem.None, mem.Trap, mem.Mprotect, mem.Clamp} {
			var wall [2]time.Duration
			for i, noElide := range []bool{true, false} {
				res, err := c.run(harness.Options{
					Engine: harness.EngineWAVM, Workload: wl,
					Strategy: s, Profile: isa.X86_64(), NoElide: noElide,
				})
				if err != nil {
					return err
				}
				wall[i] = res.MedianWall
			}
			fmt.Fprintf(c.Out, "%-10s %-10s %12v %12v %8.2fx\n",
				name, s,
				wall[0].Round(time.Microsecond), wall[1].Round(time.Microsecond),
				float64(wall[0])/float64(wall[1]))
		}
	}
	return nil
}

// ablateCommitGranularity compares the mprotect strategy's two
// commit policies: lazy per-fault commits (the paper's description)
// against eager grow-time commits (what production runtimes do).
// Eager trades many small critical sections for few large ones —
// the kernel lock stays the bottleneck either way.
func ablateCommitGranularity(c Config) error {
	wl, err := workloads.ByName("atax")
	if err != nil {
		return err
	}
	threads := c.MaxThreads
	fmt.Fprintf(c.Out, "\nAblation 5: mprotect commit granularity (atax, wasmtime, %d threads)\n", threads)
	fmt.Fprintf(c.Out, "%-14s %12s %14s %12s\n", "commit", "median", "lock wait", "mprotects")
	for _, eager := range []bool{false, true} {
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: mem.Mprotect, Profile: isa.X86_64(),
			Threads: threads, EagerCommit: eager,
		})
		if err != nil {
			return err
		}
		label := "lazy (fault)"
		if eager {
			label = "eager (grow)"
		}
		fmt.Fprintf(c.Out, "%-14s %12v %14v %12d\n",
			label, res.MedianWall.Round(time.Microsecond),
			time.Duration(res.VM.LockWaitNs).Round(time.Microsecond),
			res.VM.MprotectCalls)
	}
	return nil
}

// ablateUffdDelivery compares userfaultfd's two delivery modes: the
// SIGBUS handler running on the faulting thread (the paper's choice)
// against the poll-based handler thread, whose per-fault cross-
// thread round trip is the latency the paper's footnote 2 cites.
func ablateUffdDelivery(c Config) error {
	wl, err := workloads.ByName("atax")
	if err != nil {
		return err
	}
	threads := c.MaxThreads
	fmt.Fprintf(c.Out, "\nAblation 4: uffd delivery mode (atax, wasmtime, %d threads)\n", threads)
	fmt.Fprintf(c.Out, "%-14s %12s %12s\n", "delivery", "median", "faults")
	for _, poll := range []bool{false, true} {
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: mem.Uffd, Profile: isa.X86_64(),
			Threads: threads, UffdPoll: poll,
		})
		if err != nil {
			return err
		}
		label := "sigbus"
		if poll {
			label = "poll"
		}
		fmt.Fprintf(c.Out, "%-14s %12v %12d\n",
			label, res.MedianWall.Round(time.Microsecond), res.VM.UffdFaults)
	}
	return nil
}

// ablateMultiprocess demonstrates the paper's §4.2.1 alternative
// mitigation: "limit the number of executor threads per process, and
// instead build a multiprocess runtime". Splitting workers across
// separate address spaces removes the shared-lock contention without
// changing the bounds-checking strategy.
func ablateMultiprocess(c Config) error {
	wl, err := workloads.ByName("atax")
	if err != nil {
		return err
	}
	threads := c.MaxThreads
	fmt.Fprintf(c.Out, "\nAblation 3: multiprocess runtime (atax, wasmtime, mprotect, %d threads)\n", threads)
	fmt.Fprintf(c.Out, "%-14s %12s %14s\n", "processes", "median", "lock wait")
	for _, procs := range []int{1, threads} {
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: mem.Mprotect, Profile: isa.X86_64(),
			Threads: threads, Processes: procs,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "%-14d %12v %14v\n",
			procs, res.MedianWall.Round(time.Microsecond),
			time.Duration(res.VM.LockWaitNs).Round(time.Microsecond))
	}
	return nil
}

func ablatePooling(c Config) error {
	wl, err := workloads.ByName("atax")
	if err != nil {
		return err
	}
	threads := c.MaxThreads
	fmt.Fprintf(c.Out, "\nAblation 1: arena pooling (atax, wasmtime, %d threads)\n", threads)
	fmt.Fprintf(c.Out, "%-22s %12s %14s %10s %10s\n",
		"configuration", "median", "lock wait", "mmaps", "mprotects")

	type cfg struct {
		name     string
		strategy mem.Strategy
		noPool   bool
	}
	for _, tc := range []cfg{
		{"mprotect", mem.Mprotect, false},
		{"uffd (no pool)", mem.Uffd, true},
		{"uffd (pooled)", mem.Uffd, false},
	} {
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: tc.strategy, Profile: isa.X86_64(),
			Threads: threads, UffdNoPool: tc.noPool,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "%-22s %12v %14v %10d %10d\n",
			tc.name, res.MedianWall.Round(time.Microsecond),
			time.Duration(res.VM.LockWaitNs).Round(time.Microsecond),
			res.VM.MmapCalls, res.VM.MprotectCalls)
	}
	return nil
}

func ablateShootdown(c Config) error {
	wl, err := workloads.ByName("atax")
	if err != nil {
		return err
	}
	threads := c.MaxThreads
	fmt.Fprintf(c.Out, "\nAblation 2: TLB shootdown cost sweep (atax, wasmtime, mprotect, %d threads)\n", threads)
	fmt.Fprintf(c.Out, "%-14s %12s %14s\n", "shootdown", "median", "lock wait")
	base := isa.X86_64()
	for _, scale := range []float64{0, 1, 2, 4} {
		prof := *base
		prof.VM.ShootdownBase = time.Duration(float64(base.VM.ShootdownBase) * scale)
		prof.VM.ShootdownPerThread = time.Duration(float64(base.VM.ShootdownPerThread) * scale)
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: mem.Mprotect, Profile: &prof, Threads: threads,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "%-14s %12v %14v\n",
			fmt.Sprintf("%.0fx", scale),
			res.MedianWall.Round(time.Microsecond),
			time.Duration(res.VM.LockWaitNs).Round(time.Microsecond))
	}
	return nil
}

func ablateTHP(c Config) error {
	wl, err := workloads.ByName("gemm")
	if err != nil {
		return err
	}
	fmt.Fprintf(c.Out, "\nAblation 6: transparent huge pages (gemm, wasmtime, mprotect)\n")
	fmt.Fprintf(c.Out, "%-14s %14s %14s %8s\n", "THP size", "resident mean", "resident peak", "promos")
	base := isa.X86_64()
	for _, thp := range []uint64{0, 2 << 20, 1 << 30} {
		prof := *base
		prof.VM.THPSize = thp
		res, err := c.run(harness.Options{
			Engine: harness.EngineWasmtime, Workload: wl,
			Strategy: mem.Mprotect, Profile: &prof, Threads: 2,
		})
		if err != nil {
			return err
		}
		label := "off"
		if thp > 0 {
			label = fmtBytes(int64(thp))
		}
		fmt.Fprintf(c.Out, "%-14s %14s %14s %8d\n",
			label, fmtBytes(res.ResidentMean), fmtBytes(res.ResidentPeak),
			res.VM.THPPromotions)
	}
	return nil
}
