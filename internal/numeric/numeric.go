// Package numeric implements the WebAssembly numeric operations with
// non-trivial semantics — trapping divisions, trapping and
// saturating float-to-int truncations, IEEE min/max/nearest — shared
// by every engine so their results are bit-identical.
package numeric

import (
	"math"

	"leapsandbounds/internal/trap"
)

// DivS32 is i32.div_s with wasm trapping semantics.
func DivS32(a, b int32) int32 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	if a == math.MinInt32 && b == -1 {
		trap.Throw(trap.IntOverflow)
	}
	return a / b
}

// DivU32 is i32.div_u.
func DivU32(a, b uint32) uint32 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	return a / b
}

// RemS32 is i32.rem_s (MinInt32 rem -1 == 0, no trap).
func RemS32(a, b int32) int32 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	if a == math.MinInt32 && b == -1 {
		return 0
	}
	return a % b
}

// RemU32 is i32.rem_u.
func RemU32(a, b uint32) uint32 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	return a % b
}

// DivS64 is i64.div_s.
func DivS64(a, b int64) int64 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	if a == math.MinInt64 && b == -1 {
		trap.Throw(trap.IntOverflow)
	}
	return a / b
}

// DivU64 is i64.div_u.
func DivU64(a, b uint64) uint64 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	return a / b
}

// RemS64 is i64.rem_s.
func RemS64(a, b int64) int64 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return a % b
}

// RemU64 is i64.rem_u.
func RemU64(a, b uint64) uint64 {
	if b == 0 {
		trap.Throw(trap.DivByZero)
	}
	return a % b
}

// TruncF32ToI32 is i32.trunc_f32_s.
func TruncF32ToI32(f float32) int32 { return int32(truncTo(float64(f), math.MinInt32, 1<<31)) }

// TruncF32ToU32 is i32.trunc_f32_u.
func TruncF32ToU32(f float32) uint32 { return uint32(truncTo(float64(f), 0, 1<<32)) }

// TruncF64ToI32 is i32.trunc_f64_s.
func TruncF64ToI32(f float64) int32 { return int32(truncTo(f, math.MinInt32, 1<<31)) }

// TruncF64ToU32 is i32.trunc_f64_u.
func TruncF64ToU32(f float64) uint32 { return uint32(truncTo(f, 0, 1<<32)) }

// TruncF32ToI64 is i64.trunc_f32_s.
func TruncF32ToI64(f float32) int64 { return truncToI64(float64(f)) }

// TruncF64ToI64 is i64.trunc_f64_s.
func TruncF64ToI64(f float64) int64 { return truncToI64(f) }

// TruncF32ToU64 is i64.trunc_f32_u.
func TruncF32ToU64(f float32) uint64 { return truncToU64(float64(f)) }

// TruncF64ToU64 is i64.trunc_f64_u.
func TruncF64ToU64(f float64) uint64 { return truncToU64(f) }

// truncTo truncates f toward zero and traps unless lo <= result < hi.
func truncTo(f, lo, hi float64) int64 {
	if math.IsNaN(f) {
		trap.Throw(trap.InvalidConversion)
	}
	t := math.Trunc(f)
	if t < lo || t >= hi {
		trap.Throw(trap.IntOverflow)
	}
	return int64(t)
}

func truncToI64(f float64) int64 {
	if math.IsNaN(f) {
		trap.Throw(trap.InvalidConversion)
	}
	t := math.Trunc(f)
	// Both bounds are exactly representable: -2^63, and the >=
	// comparison against MaxInt64 rounds up to 2^63 in float64.
	if t < math.MinInt64 || t >= math.MaxInt64 {
		trap.Throw(trap.IntOverflow)
	}
	return int64(t)
}

func truncToU64(f float64) uint64 {
	if math.IsNaN(f) {
		trap.Throw(trap.InvalidConversion)
	}
	t := math.Trunc(f)
	if t < 0 || t >= math.MaxUint64 {
		trap.Throw(trap.IntOverflow)
	}
	return uint64(t)
}

// TruncSatF32ToI32 is i32.trunc_sat_f32_s.
func TruncSatF32ToI32(f float32) int32 { return int32(satTo(float64(f), math.MinInt32, math.MaxInt32)) }

// TruncSatF32ToU32 is i32.trunc_sat_f32_u.
func TruncSatF32ToU32(f float32) uint32 { return uint32(satTo(float64(f), 0, math.MaxUint32)) }

// TruncSatF64ToI32 is i32.trunc_sat_f64_s.
func TruncSatF64ToI32(f float64) int32 { return int32(satTo(f, math.MinInt32, math.MaxInt32)) }

// TruncSatF64ToU32 is i32.trunc_sat_f64_u.
func TruncSatF64ToU32(f float64) uint32 { return uint32(satTo(f, 0, math.MaxUint32)) }

// TruncSatF32ToI64 is i64.trunc_sat_f32_s.
func TruncSatF32ToI64(f float32) int64 { return satToI64(float64(f)) }

// TruncSatF64ToI64 is i64.trunc_sat_f64_s.
func TruncSatF64ToI64(f float64) int64 { return satToI64(f) }

// TruncSatF32ToU64 is i64.trunc_sat_f32_u.
func TruncSatF32ToU64(f float32) uint64 { return satToU64(float64(f)) }

// TruncSatF64ToU64 is i64.trunc_sat_f64_u.
func TruncSatF64ToU64(f float64) uint64 { return satToU64(f) }

func satTo(f, lo, hi float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f < lo:
		return int64(lo)
	case f > hi:
		return int64(hi)
	default:
		return int64(math.Trunc(f))
	}
}

func satToI64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f <= math.MinInt64:
		return math.MinInt64
	case f >= math.MaxInt64:
		return math.MaxInt64
	default:
		return int64(math.Trunc(f))
	}
}

func satToU64(f float64) uint64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f <= 0:
		return 0
	case f >= math.MaxUint64:
		return math.MaxUint64
	default:
		return uint64(math.Trunc(f))
	}
}

// Fmin implements wasm f64.min: NaN-propagating, -0 < +0.
func Fmin(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) {
			return a
		}
		return b
	}
	return math.Min(a, b)
}

// Fmax implements wasm f64.max.
func Fmax(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.NaN()
	}
	if a == 0 && b == 0 {
		if math.Signbit(a) {
			return b
		}
		return a
	}
	return math.Max(a, b)
}

// Fmin32 is wasm f32.min.
func Fmin32(a, b float32) float32 { return float32(Fmin(float64(a), float64(b))) }

// Fmax32 is wasm f32.max.
func Fmax32(a, b float32) float32 { return float32(Fmax(float64(a), float64(b))) }

// Nearest implements f64.nearest (round half to even).
func Nearest(f float64) float64 { return math.RoundToEven(f) }

// Nearest32 implements f32.nearest.
func Nearest32(f float32) float32 {
	return float32(math.RoundToEven(float64(f)))
}
