package numeric

import (
	"math"
	"testing"
	"testing/quick"

	"leapsandbounds/internal/trap"
)

func catches(t *testing.T, kind trap.Kind, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected trap")
		}
		tr, ok := r.(*trap.Trap)
		if !ok {
			t.Fatalf("panic value %v is not a trap", r)
		}
		if tr.Kind != kind {
			t.Fatalf("trap kind %v, want %v", tr.Kind, kind)
		}
	}()
	f()
}

func TestDivTrapping(t *testing.T) {
	catches(t, trap.DivByZero, func() { DivS32(1, 0) })
	catches(t, trap.DivByZero, func() { DivU32(1, 0) })
	catches(t, trap.DivByZero, func() { RemS32(1, 0) })
	catches(t, trap.DivByZero, func() { DivS64(1, 0) })
	catches(t, trap.DivByZero, func() { RemU64(1, 0) })
	catches(t, trap.IntOverflow, func() { DivS32(math.MinInt32, -1) })
	catches(t, trap.IntOverflow, func() { DivS64(math.MinInt64, -1) })
	if got := RemS32(math.MinInt32, -1); got != 0 {
		t.Errorf("MinInt32 rem -1 = %d, want 0", got)
	}
	if got := RemS64(math.MinInt64, -1); got != 0 {
		t.Errorf("MinInt64 rem -1 = %d, want 0", got)
	}
	if got := DivS32(-7, 2); got != -3 {
		t.Errorf("-7/2 = %d (wasm truncates toward zero)", got)
	}
	if got := RemS32(-7, 2); got != -1 {
		t.Errorf("-7%%2 = %d", got)
	}
}

func TestTruncTrapping(t *testing.T) {
	catches(t, trap.InvalidConversion, func() { TruncF64ToI32(math.NaN()) })
	catches(t, trap.IntOverflow, func() { TruncF64ToI32(1e10) })
	catches(t, trap.IntOverflow, func() { TruncF64ToI32(-1e10) })
	catches(t, trap.IntOverflow, func() { TruncF64ToU32(-1) })
	catches(t, trap.IntOverflow, func() { TruncF32ToI32(float32(math.Inf(1))) })
	catches(t, trap.IntOverflow, func() { TruncF64ToI64(1e19) })
	catches(t, trap.IntOverflow, func() { TruncF64ToU64(-0.5 - 1) })

	if got := TruncF64ToI32(-2.9); got != -2 {
		t.Errorf("trunc(-2.9) = %d", got)
	}
	if got := TruncF64ToU32(4294967295.0); got != math.MaxUint32 {
		t.Errorf("trunc(max u32) = %d", got)
	}
	// -0.9 truncates to 0, which is in range for unsigned.
	if got := TruncF64ToU32(-0.9); got != 0 {
		t.Errorf("trunc(-0.9) = %d", got)
	}
	// Exactly -2^63 is representable and valid.
	if got := TruncF64ToI64(-9223372036854775808.0); got != math.MinInt64 {
		t.Errorf("trunc(-2^63) = %d", got)
	}
}

func TestTruncSat(t *testing.T) {
	if got := TruncSatF64ToI32(math.NaN()); got != 0 {
		t.Errorf("sat(NaN) = %d", got)
	}
	if got := TruncSatF64ToI32(1e10); got != math.MaxInt32 {
		t.Errorf("sat(1e10) = %d", got)
	}
	if got := TruncSatF64ToI32(-1e10); got != math.MinInt32 {
		t.Errorf("sat(-1e10) = %d", got)
	}
	if got := TruncSatF64ToU32(-5); got != 0 {
		t.Errorf("sat_u(-5) = %d", got)
	}
	if got := TruncSatF64ToU64(math.Inf(1)); got != math.MaxUint64 {
		t.Errorf("sat_u64(+inf) = %d", got)
	}
	if got := TruncSatF64ToI64(math.Inf(-1)); got != math.MinInt64 {
		t.Errorf("sat_i64(-inf) = %d", got)
	}
	if got := TruncSatF32ToI32(3.7); got != 3 {
		t.Errorf("sat(3.7) = %d", got)
	}
}

func TestFminFmax(t *testing.T) {
	if !math.IsNaN(Fmin(math.NaN(), 1)) || !math.IsNaN(Fmax(1, math.NaN())) {
		t.Error("NaN must propagate")
	}
	negZero := math.Copysign(0, -1)
	if !math.Signbit(Fmin(negZero, 0)) {
		t.Error("min(-0, +0) must be -0")
	}
	if math.Signbit(Fmax(negZero, 0)) {
		t.Error("max(-0, +0) must be +0")
	}
	if Fmin(3, 5) != 3 || Fmax(3, 5) != 5 {
		t.Error("basic min/max wrong")
	}
}

func TestNearest(t *testing.T) {
	cases := map[float64]float64{
		0.5: 0, 1.5: 2, 2.5: 2, -0.5: 0, -1.5: -2, 3.2: 3, -3.7: -4,
	}
	for in, want := range cases {
		if got := Nearest(in); got != want {
			t.Errorf("nearest(%v) = %v, want %v", in, got, want)
		}
	}
}

// TestDivIdentity checks a/b*b + a%b == a for random operands.
func TestDivIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		return DivS32(a, b)*b+RemS32(a, b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b uint64) bool {
		if b == 0 {
			return true
		}
		return DivU64(a, b)*b+RemU64(a, b) == a
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestSatMatchesTrapWhenInRange: for in-range values the saturating
// and trapping conversions agree.
func TestSatMatchesTrapWhenInRange(t *testing.T) {
	f := func(x int32) bool {
		v := float64(x)
		return TruncSatF64ToI32(v) == TruncF64ToI32(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
