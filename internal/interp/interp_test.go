package interp_test

import (
	"math"
	"testing"

	"leapsandbounds/internal/core"
	"leapsandbounds/internal/interp"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/wasm"
	g "leapsandbounds/internal/wasmgen"
)

func compile(t *testing.T, mb *g.ModuleBuilder) core.CompiledModule {
	t.Helper()
	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := interp.NewWasm3().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func instantiate(t *testing.T, cm core.CompiledModule) core.Instance {
	t.Helper()
	inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	return inst
}

func call1(t *testing.T, inst core.Instance, name string, args ...uint64) uint64 {
	t.Helper()
	res, err := inst.Invoke(name, args...)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(res) != 1 {
		t.Fatalf("%s: %d results", name, len(res))
	}
	return res[0]
}

func TestArithLoop(t *testing.T) {
	// sum of i*i for i in [0,n)
	mb := g.NewModule()
	f := mb.Func("sumsq", wasm.I32)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	acc := f.LocalI32("acc")
	f.Body(
		g.For(i, g.I32(0), g.Get(n),
			g.Set(acc, g.Add(g.Get(acc), g.Mul(g.Get(i), g.Get(i)))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("sumsq", f)
	inst := instantiate(t, compile(t, mb))
	got := call1(t, inst, "sumsq", 10)
	if got != 285 {
		t.Errorf("sumsq(10) = %d, want 285", got)
	}
	if got := call1(t, inst, "sumsq", 0); got != 0 {
		t.Errorf("sumsq(0) = %d, want 0", got)
	}
}

func TestRecursiveCalls(t *testing.T) {
	mb := g.NewModule()
	fib := mb.Func("fib", wasm.I32)
	n := fib.ParamI32("n")
	fib.Body(
		If(g.Lt(g.Get(n), g.I32(2)), g.Return(g.Get(n))),
		g.Return(g.Add(
			g.Call(fib, g.Sub(g.Get(n), g.I32(1))),
			g.Call(fib, g.Sub(g.Get(n), g.I32(2))),
		)),
	)
	mb.Export("fib", fib)
	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "fib", 20); got != 6765 {
		t.Errorf("fib(20) = %d, want 6765", got)
	}
}

// If re-exported for brevity in tests.
func If(cond g.Expr, body ...g.Stmt) g.Stmt { return g.If(cond, body...) }

func TestMemoryKernel(t *testing.T) {
	// Write i*3 into an i32 array, then sum it back.
	mb := g.NewModule()
	mb.Memory(1, 4)
	lay := g.NewLayout(0)
	arr := lay.I32(1000)

	f := mb.Func("kernel", wasm.I32)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	acc := f.LocalI32("acc")
	f.Body(
		g.For(i, g.I32(0), g.Get(n),
			arr.Store(g.Get(i), g.Mul(g.Get(i), g.I32(3))),
		),
		g.For(i, g.I32(0), g.Get(n),
			g.Set(acc, g.Add(g.Get(acc), arr.Load(g.Get(i)))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("kernel", f)
	inst := instantiate(t, compile(t, mb))
	// sum 3*i for i<100 = 3*4950
	if got := call1(t, inst, "kernel", 100); got != 14850 {
		t.Errorf("kernel(100) = %d, want 14850", got)
	}
}

func TestFloatKernel(t *testing.T) {
	mb := g.NewModule()
	mb.Memory(1, 4)
	lay := g.NewLayout(0)
	a := lay.F64(256)

	f := mb.Func("dot", wasm.F64)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	acc := f.LocalF64("acc")
	f.Body(
		g.For(i, g.I32(0), g.Get(n),
			a.Store(g.Get(i), g.Mul(g.F64FromI32(g.Get(i)), g.F64(0.5))),
		),
		g.For(i, g.I32(0), g.Get(n),
			g.Set(acc, g.Add(g.Get(acc), g.Mul(a.Load(g.Get(i)), a.Load(g.Get(i))))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("dot", f)
	inst := instantiate(t, compile(t, mb))
	got := math.Float64frombits(call1(t, inst, "dot", 10))
	want := 0.0
	for i := 0; i < 10; i++ {
		v := float64(i) * 0.5
		want += v * v
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("dot = %v, want %v", got, want)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	// Count odd numbers below n, stopping at the first multiple of 25.
	mb := g.NewModule()
	f := mb.Func("count", wasm.I32)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	cnt := f.LocalI32("cnt")
	f.Body(
		g.While(g.Lt(g.Get(i), g.Get(n)),
			g.Set(i, g.Add(g.Get(i), g.I32(1))),
			If(g.And(g.Eq(g.Rem(g.Get(i), g.I32(25)), g.I32(0)), g.Gt(g.Get(i), g.I32(0))),
				g.Break(),
			),
			If(g.Eq(g.Rem(g.Get(i), g.I32(2)), g.I32(0)),
				g.Continue(),
			),
			g.Set(cnt, g.Add(g.Get(cnt), g.I32(1))),
		),
		g.Return(g.Get(cnt)),
	)
	mb.Export("count", f)
	inst := instantiate(t, compile(t, mb))
	// odds in 1..24 = 12
	if got := call1(t, inst, "count", 1000); got != 12 {
		t.Errorf("count = %d, want 12", got)
	}
	if got := call1(t, inst, "count", 10); got != 5 {
		t.Errorf("count(10) = %d, want 5", got)
	}
}

func TestForDown(t *testing.T) {
	// Collect digits of n in most-significant-last order by counting
	// down, verifying the descending loop includes both endpoints.
	mb := g.NewModule()
	f := mb.Func("sumdown", wasm.I32)
	from := f.ParamI32("from")
	downTo := f.ParamI32("downTo")
	i := f.LocalI32("i")
	acc := f.LocalI32("acc")
	f.Body(
		g.ForDown(i, g.Get(from), g.Get(downTo),
			g.Set(acc, g.Add(g.Mul(g.Get(acc), g.I32(10)), g.Get(i))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("sumdown", f)
	inst := instantiate(t, compile(t, mb))
	// 5,4,3 → 543
	if got := call1(t, inst, "sumdown", 5, 3); got != 543 {
		t.Errorf("sumdown(5,3) = %d, want 543", got)
	}
	// from < downTo: zero iterations.
	if got := call1(t, inst, "sumdown", 2, 9); got != 0 {
		t.Errorf("sumdown(2,9) = %d, want 0", got)
	}
	// Single iteration when equal.
	if got := call1(t, inst, "sumdown", 7, 7); got != 7 {
		t.Errorf("sumdown(7,7) = %d, want 7", got)
	}
}

func TestGlobalsAndSelect(t *testing.T) {
	mb := g.NewModule()
	gv := mb.GlobalI32(7)
	f := mb.Func("maxg", wasm.I32)
	x := f.ParamI32("x")
	f.Body(
		g.SetG(gv, g.Sel(g.Gt(g.Get(x), g.GetG(gv)), g.Get(x), g.GetG(gv))),
		g.Return(g.GetG(gv)),
	)
	mb.Export("maxg", f)
	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "maxg", 3); got != 7 {
		t.Errorf("maxg(3) = %d", got)
	}
	if got := call1(t, inst, "maxg", 11); got != 11 {
		t.Errorf("maxg(11) = %d", got)
	}
	if got := call1(t, inst, "maxg", 5); got != 11 {
		t.Errorf("maxg(5) after 11 = %d", got)
	}
}

func TestCallIndirect(t *testing.T) {
	mb := g.NewModule()
	add := mb.Func("add", wasm.I32)
	a1, b1 := add.ParamI32("a"), add.ParamI32("b")
	add.Body(g.Return(g.Add(g.Get(a1), g.Get(b1))))
	sub := mb.Func("sub", wasm.I32)
	a2, b2 := sub.ParamI32("a"), sub.ParamI32("b")
	sub.Body(g.Return(g.Sub(g.Get(a2), g.Get(b2))))
	mb.Table(add, sub)

	disp := mb.Func("dispatch", wasm.I32)
	which := disp.ParamI32("which")
	x := disp.ParamI32("x")
	y := disp.ParamI32("y")
	disp.Body(g.Return(g.CallIndirect(add, g.Get(which), g.Get(x), g.Get(y))))
	mb.Export("dispatch", disp)

	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "dispatch", 0, 30, 12); got != 42 {
		t.Errorf("dispatch add = %d", got)
	}
	if got := call1(t, inst, "dispatch", 1, 30, 12); got != 18 {
		t.Errorf("dispatch sub = %d", got)
	}
	// Out-of-table dispatch traps.
	if _, err := inst.Invoke("dispatch", 9, 1, 1); err == nil {
		t.Error("expected table trap")
	}
}

func TestMemoryGrowAndSize(t *testing.T) {
	mb := g.NewModule()
	mb.Memory(1, 4)
	f := mb.Func("grow", wasm.I32)
	pages := f.ParamI32("pages")
	f.Body(
		g.Drop(g.MemGrow(g.Get(pages))),
		g.Return(g.MemSize()),
	)
	mb.Export("grow", f)
	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "grow", 2); got != 3 {
		t.Errorf("after grow(2): size %d, want 3", got)
	}
	if got := call1(t, inst, "grow", 100); got != 3 {
		t.Errorf("failed grow changed size: %d", got)
	}
}

func TestDataSegmentsAndBulkMemory(t *testing.T) {
	mb := g.NewModule()
	mb.Memory(1, 2)
	mb.Data(16, []byte("hello world"))
	f := mb.Func("get", wasm.I32)
	idx := f.ParamI32("i")
	f.Body(g.Return(g.LoadU8(g.Get(idx), 16)))
	mb.Export("get", f)

	cpy := mb.Func("copyout", wasm.I32)
	cpy.Body(
		g.MemCopy(g.I32(100), g.I32(16), g.I32(11)),
		g.Return(g.LoadU8(g.I32(100), 0)),
	)
	mb.Export("copyout", cpy)

	fill := mb.Func("fill", wasm.I32)
	fill.Body(
		g.MemFill(g.I32(200), g.I32(0x5a), g.I32(8)),
		g.Return(g.LoadU8(g.I32(207), 0)),
	)
	mb.Export("fill", fill)

	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "get", 0); got != 'h' {
		t.Errorf("data[0] = %c", rune(got))
	}
	if got := call1(t, inst, "get", 10); got != 'd' {
		t.Errorf("data[10] = %c", rune(got))
	}
	if got := call1(t, inst, "copyout"); got != 'h' {
		t.Errorf("copy = %c", rune(got))
	}
	if got := call1(t, inst, "fill"); got != 0x5a {
		t.Errorf("fill = %#x", got)
	}
}

func TestTrapsSurfaceAsErrors(t *testing.T) {
	mb := g.NewModule()
	f := mb.Func("div", wasm.I32)
	a := f.ParamI32("a")
	b := f.ParamI32("b")
	f.Body(g.Return(g.Div(g.Get(a), g.Get(b))))
	mb.Export("div", f)

	boom := mb.Func("boom", wasm.I32)
	boom.Body(g.Unreachable(), g.Return(g.I32(0)))
	mb.Export("boom", boom)

	inst := instantiate(t, compile(t, mb))
	if got := call1(t, inst, "div", 84, 2); got != 42 {
		t.Errorf("div = %d", got)
	}
	if _, err := inst.Invoke("div", 1, 0); err == nil {
		t.Error("divide by zero did not error")
	}
	if _, err := inst.Invoke("boom"); err == nil {
		t.Error("unreachable did not error")
	}
	// The instance stays usable after a trap.
	if got := call1(t, inst, "div", 10, 5); got != 2 {
		t.Errorf("div after trap = %d", got)
	}
}

func TestStackOverflowTrap(t *testing.T) {
	mb := g.NewModule()
	f := mb.Func("inf", wasm.I32)
	n := f.ParamI32("n")
	f.Body(g.Return(g.Call(f, g.Add(g.Get(n), g.I32(1)))))
	mb.Export("inf", f)
	inst := instantiate(t, compile(t, mb))
	if _, err := inst.Invoke("inf", 0); err == nil {
		t.Error("infinite recursion did not trap")
	}
}

func TestHostImport(t *testing.T) {
	mb := g.NewModule()
	host := mb.ImportFunc("env", "mul2", []wasm.ValueType{wasm.I32}, []wasm.ValueType{wasm.I32})
	f := mb.Func("go", wasm.I32)
	x := f.ParamI32("x")
	f.Body(g.Return(g.Call(host, g.Get(x))))
	mb.Export("go", f)

	cm := compile(t, mb)
	imports := core.Imports{
		"env": {
			"mul2": core.HostFunc{
				Type: wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}},
				Fn: func(hc *core.HostContext, args []uint64) (uint64, error) {
					return uint64(uint32(args[0]) * 2), nil
				},
			},
		},
	}
	inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64()}, imports)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	res, err := inst.Invoke("go", 21)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Errorf("host call = %d", res[0])
	}
}

func TestCycleCounting(t *testing.T) {
	mb := g.NewModule()
	f := mb.Func("loop", wasm.I32)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	f.Body(
		g.For(i, g.I32(0), g.Get(n), g.Seq()),
		g.Return(g.Get(i)),
	)
	mb.Export("loop", f)
	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := interp.NewWasm3().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64(), CountCycles: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if _, err := inst.Invoke("loop", 1000); err != nil {
		t.Fatal(err)
	}
	c := inst.Counts()
	if c == nil {
		t.Fatal("counts disabled")
	}
	if c[isa.ClassDispatch] < 1000 {
		t.Errorf("dispatch count %d, want >= 1000", c[isa.ClassDispatch])
	}
	if c[isa.ClassBranch] < 1000 {
		t.Errorf("branch count %d, want >= 1000", c[isa.ClassBranch])
	}
	if isa.X86_64().Cycles(c) <= 0 {
		t.Error("cycle total should be positive")
	}
}

func TestWasm3ForcesTrapStrategy(t *testing.T) {
	mb := g.NewModule()
	mb.Memory(1, 2)
	f := mb.Func("peek", wasm.I32)
	a := f.ParamI32("a")
	f.Body(g.Return(g.LoadI32(g.Get(a), 0)))
	mb.Export("peek", f)

	cm := compile(t, mb)
	inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64(), Strategy: mem.None}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	// Even with strategy none requested, wasm3 traps out-of-bounds.
	if _, err := inst.Invoke("peek", 1<<20); err == nil {
		t.Error("wasm3 should trap OOB regardless of configured strategy")
	}
}

func TestAllStrategiesExecuteIdentically(t *testing.T) {
	mb := g.NewModule()
	mb.Memory(1, 8)
	lay := g.NewLayout(0)
	arr := lay.I64(4096)
	f := mb.Func("churn", wasm.I64)
	n := f.ParamI32("n")
	i := f.LocalI32("i")
	acc := f.LocalI64("acc")
	f.Body(
		g.Drop(g.MemGrow(g.I32(2))),
		g.For(i, g.I32(0), g.Get(n),
			arr.Store(g.Get(i), g.Mul(g.I64FromI32(g.Get(i)), g.I64(2654435761))),
		),
		g.For(i, g.I32(0), g.Get(n),
			g.Set(acc, g.Xor(g.Get(acc), arr.Load(g.Get(i)))),
		),
		g.Return(g.Get(acc)),
	)
	mb.Export("churn", f)

	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := interp.NewConfigurable().Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var want uint64
	for si, s := range mem.Strategies() {
		inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64(), Strategy: s}, nil)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		res, err := inst.Invoke("churn", 4000)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		inst.Close()
		if si == 0 {
			want = res[0]
		} else if res[0] != want {
			t.Errorf("%v: result %#x, want %#x", s, res[0], want)
		}
	}
	if want == 0 {
		t.Error("suspicious zero checksum")
	}
}
