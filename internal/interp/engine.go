package interp

import (
	"fmt"
	"math"
	"math/bits"

	"leapsandbounds/internal/core"
	"leapsandbounds/internal/flatten"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/modcache"
	"leapsandbounds/internal/numeric"
	"leapsandbounds/internal/prof"
	"leapsandbounds/internal/trap"
	"leapsandbounds/internal/validate"
	"leapsandbounds/internal/wasm"
)

// Engine is the threaded-interpreter engine. Like the compiled
// engines, an Engine is immutable configuration with no lifecycle,
// so its compiled modules are safely shared through the process-wide
// module cache.
type Engine struct {
	name      string
	desc      string
	forceTrap bool
	cache     core.ModuleCache
}

// NewWasm3 returns the Wasm3 analog: a threaded interpreter that,
// like Wasm3 in the paper (§3.2), always uses trap-equivalent bounds
// checks because the interpreter's memory accessors check bounds
// inline regardless of runtime configuration.
func NewWasm3() *Engine {
	return &Engine{
		name:      "wasm3",
		desc:      "threaded interpreter (Wasm3 analog); trap-style bounds checks",
		forceTrap: true,
		cache:     modcache.Shared(),
	}
}

// NewConfigurable returns an interpreter that honours the configured
// bounds-checking strategy; used for strategy ablations and as the
// baseline tier of the tiered (V8 analog) engine.
func NewConfigurable() *Engine {
	return &Engine{
		name:  "interp",
		desc:  "threaded interpreter with configurable bounds checking",
		cache: modcache.Shared(),
	}
}

// SetCache implements core.CacheSetter; a nil cache detaches the
// engine from caching. Call before the first Compile.
func (e *Engine) SetCache(c core.ModuleCache) { e.cache = c }

// Name implements core.Engine.
func (e *Engine) Name() string { return e.name }

// Description implements core.Engine.
func (e *Engine) Description() string { return e.desc }

// Module is the interpreter's compiled form; it implements
// core.CompiledModule and is exported so the tiered engine can reuse
// interpreter instances as its baseline tier.
type Module struct {
	engine *Engine
	wasm   *wasm.Module
	funcs  []*flatten.Func // module-defined functions, in code order
}

// Compile implements core.Engine.
func (e *Engine) Compile(m *wasm.Module) (core.CompiledModule, error) {
	return e.CompileInterp(m)
}

// CompileInterp is Compile with a concrete result type. It routes
// through the engine's module cache: validate + flatten run only on
// a cache miss. "wasm3" and "interp" artifacts are keyed separately
// (the engine name is part of the key) even though flattening is
// identical, because the cached module retains the engine pointer
// whose forceTrap flag selects the memory accessors at instantiate.
func (e *Engine) CompileInterp(m *wasm.Module) (*Module, error) {
	if e.cache == nil {
		return e.compileInterp(m)
	}
	cm, _, err := e.cache.GetOrCompile(m, e.name, "",
		func() (core.CompiledModule, error) { return e.compileInterp(m) })
	if err != nil {
		return nil, err
	}
	return cm.(*Module), nil
}

// compileInterp is the uncached compile pipeline.
func (e *Engine) compileInterp(m *wasm.Module) (*Module, error) {
	if err := validate.Module(m); err != nil {
		return nil, err
	}
	cm := &Module{engine: e, wasm: m}
	imported := uint32(m.NumImportedFuncs())
	for i := range m.Code {
		pf, err := flatten.Flatten(m, imported+uint32(i), &m.Code[i])
		if err != nil {
			return nil, fmt.Errorf("interp: function %d: %w", i, err)
		}
		cm.funcs = append(cm.funcs, pf)
	}
	return cm, nil
}

// Instantiate implements core.CompiledModule.
func (cm *Module) Instantiate(cfg core.Config, imports core.Imports) (core.Instance, error) {
	return cm.InstantiateInterp(cfg, imports)
}

// InstantiateInterp is Instantiate with a concrete result type.
func (cm *Module) InstantiateInterp(cfg core.Config, imports core.Imports) (*Instance, error) {
	if cm.engine.forceTrap {
		cfg.Strategy = mem.Trap
	}
	if cfg.ProfLabel == "" {
		cfg.ProfLabel = "interp"
	}
	base, err := core.NewInstanceBase(cm.wasm, cfg, imports)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		base:  base,
		mod:   cm,
		stack: make([]uint64, 4096),
		count: cfg.CountCycles,
	}
	if cm.wasm.Start != nil {
		if _, err := inst.invokeIndex(*cm.wasm.Start, nil); err != nil {
			_ = base.Close()
			return nil, fmt.Errorf("interp: start function: %w", err)
		}
	}
	return inst, nil
}

// InstantiateSnapshot implements core.SnapshotInstantiator: the
// instance restores a template's frozen state, skipping segment
// initialization and the start function. The wasm3 analog's forced
// trap checking applies to forks exactly as it does to fresh
// instances.
func (cm *Module) InstantiateSnapshot(cfg core.Config, imports core.Imports, snap *core.StateSnapshot) (core.Instance, error) {
	if cm.engine.forceTrap {
		cfg.Strategy = mem.Trap
	}
	if cfg.ProfLabel == "" {
		cfg.ProfLabel = "interp"
	}
	base, err := core.NewInstanceBaseFromSnapshot(cm.wasm, cfg, imports, snap)
	if err != nil {
		return nil, err
	}
	return &Instance{
		base:  base,
		mod:   cm,
		stack: make([]uint64, 4096),
		count: cfg.CountCycles,
	}, nil
}

// Instance is one interpreter isolate.
type Instance struct {
	base  *core.InstanceBase
	mod   *Module
	stack []uint64
	count bool
}

// Memory implements core.Instance.
func (inst *Instance) Memory() *mem.Memory { return inst.base.Mem }

// Counts implements core.Instance.
func (inst *Instance) Counts() *isa.Counts { return inst.base.Counts() }

// Close implements core.Instance.
func (inst *Instance) Close() error { return inst.base.Close() }

// Snapshot implements core.Snapshotter.
func (inst *Instance) Snapshot() (*core.StateSnapshot, error) { return inst.base.Snapshot() }

// Invoke implements core.Instance.
func (inst *Instance) Invoke(name string, args ...uint64) (res []uint64, err error) {
	idx, ok := inst.mod.wasm.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("interp: no exported function %q", name)
	}
	sp := inst.base.BeginInvoke()
	res, err = inst.invokeIndex(idx, args)
	inst.base.EndInvoke(sp, err)
	return res, err
}

func (inst *Instance) invokeIndex(idx uint32, args []uint64) (res []uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = core.InvokeErr(r)
		}
	}()
	imported := inst.mod.wasm.NumImportedFuncs()
	if int(idx) < imported {
		v, err := inst.base.CallHost(int(idx), args)
		if err != nil {
			return nil, err
		}
		if len(inst.base.HostFuncs[idx].Type.Results) > 0 {
			return []uint64{v}, nil
		}
		return nil, nil
	}
	pf := inst.mod.funcs[idx-uint32(imported)]
	if len(args) != pf.NumParams {
		return nil, fmt.Errorf("interp: %d args for function with %d params", len(args), pf.NumParams)
	}
	inst.ensureStack(0, pf)
	copy(inst.stack, args)
	for i := pf.NumParams; i < pf.NumLocals; i++ {
		inst.stack[i] = 0
	}
	inst.exec(pf, 0)
	if len(pf.Type.Results) > 0 {
		return []uint64{inst.stack[0]}, nil
	}
	return nil, nil
}

// ensureStack grows the value stack to fit a frame at base.
func (inst *Instance) ensureStack(base int, pf *flatten.Func) {
	need := base + pf.NumLocals + pf.MaxStack
	if need > len(inst.stack) {
		ns := make([]uint64, max(need, 2*len(inst.stack)))
		copy(ns, inst.stack)
		inst.stack = ns
	}
}

// call dispatches a call to function-space index fi with arguments
// already placed at stack[argBase:]; results end up at argBase.
func (inst *Instance) call(fi uint32, argBase int) {
	imported := inst.mod.wasm.NumImportedFuncs()
	if int(fi) < imported {
		hf := inst.base.HostFuncs[fi]
		n := len(hf.Type.Params)
		v, err := inst.base.CallHost(int(fi), inst.stack[argBase:argBase+n])
		if err != nil {
			trap.ThrowHostErr(err)
		}
		if len(hf.Type.Results) > 0 {
			inst.stack[argBase] = v
		}
		return
	}
	pf := inst.mod.funcs[fi-uint32(imported)]
	inst.base.EnterCall()
	inst.ensureStack(argBase, pf)
	for i := argBase + pf.NumParams; i < argBase+pf.NumLocals; i++ {
		inst.stack[i] = 0
	}
	inst.exec(pf, argBase)
	inst.base.LeaveCall()
}

// exec runs a pre-decoded function with its locals at stack[base:].
// The operand stack occupies stack[base+numLocals:]. On return, the
// function's results (if any) are at stack[base:].
func (inst *Instance) exec(pf *flatten.Func, base int) {
	code := pf.Code
	locals := base
	opBase := base + pf.NumLocals
	sp := opBase // next free slot
	memory := inst.base.Mem
	counting := inst.count
	counts := &inst.base.CycleCounts
	ckClass, ckOn := inst.base.CheckClass()
	shared := memory != nil && memory.Shared()
	cell := inst.base.ProfCell
	fnIndex := pf.Index

	for pc := 0; ; pc++ {
		in := &code[pc]
		if counting {
			counts[in.Class]++
			counts[isa.ClassDispatch]++
			if in.Class == isa.ClassLoad || in.Class == isa.ClassStore {
				if ckOn {
					counts[ckClass]++
				}
				if shared {
					// Accesses to a wasm-threads shared memory pay
					// the ordering surcharge the atomic accessors
					// model (see isa.ClassAtomic).
					counts[isa.ClassAtomic]++
				}
			}
		}
		if cell != nil {
			var fl uint8
			if ckOn && (in.Class == isa.ClassLoad || in.Class == isa.ClassStore) {
				fl = prof.FlagChecked
			}
			cell.Set(fnIndex, in.Class, fl)
		}
		switch in.Op {
		case flatten.OpJump:
			sp = inst.unwind(opBase, sp, in.PopTo, in.Arity)
			pc = int(in.Tgt) - 1
		case flatten.OpIfFalse:
			sp--
			if uint32(inst.stack[sp]) == 0 {
				pc = int(in.Tgt) - 1
			}
		case flatten.OpBranchIf:
			sp--
			if uint32(inst.stack[sp]) != 0 {
				sp = inst.unwind(opBase, sp, in.PopTo, in.Arity)
				pc = int(in.Tgt) - 1
			}
		case wasm.OpBrTable:
			sp--
			i := int(uint32(inst.stack[sp]))
			if i >= len(in.Table)-1 {
				i = len(in.Table) - 1 // default entry
			}
			bt := in.Table[i]
			sp = inst.unwind(opBase, sp, bt.PopTo, bt.Arity)
			pc = int(bt.Tgt) - 1
		case flatten.OpReturnEnd:
			if in.Arity > 0 {
				inst.stack[base] = inst.stack[sp-1]
			}
			return
		case wasm.OpUnreachable:
			trap.Throw(trap.Unreachable)
		case wasm.OpCall:
			argBase := opBase + int(in.PopTo)
			inst.call(uint32(in.A), argBase)
			sp = argBase + int(in.Arity)
		case wasm.OpCallIndirect:
			sp--
			slot := uint32(inst.stack[sp])
			fi := inst.resolveIndirect(slot, uint32(in.A))
			argBase := opBase + int(in.PopTo)
			inst.call(fi, argBase)
			sp = argBase + int(in.Arity)
		case wasm.OpDrop:
			sp--
		case wasm.OpSelect:
			sp -= 2
			if uint32(inst.stack[sp+1]) == 0 {
				inst.stack[sp-1] = inst.stack[sp]
			}
		case wasm.OpLocalGet:
			inst.stack[sp] = inst.stack[locals+int(in.A)]
			sp++
		case wasm.OpLocalSet:
			sp--
			inst.stack[locals+int(in.A)] = inst.stack[sp]
		case wasm.OpLocalTee:
			inst.stack[locals+int(in.A)] = inst.stack[sp-1]
		case wasm.OpGlobalGet:
			inst.stack[sp] = inst.base.Globals[in.A]
			sp++
		case wasm.OpGlobalSet:
			sp--
			inst.base.Globals[in.A] = inst.stack[sp]
		case wasm.OpMemorySize:
			inst.stack[sp] = uint64(memory.SizePages())
			sp++
		case wasm.OpMemoryGrow:
			delta := uint32(inst.stack[sp-1])
			inst.stack[sp-1] = uint64(uint32(memory.Grow(delta)))
		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			inst.stack[sp] = in.A
			sp++
		case wasm.OpPrefix:
			sp = inst.execPrefix(in, sp)
		default:
			if in.Op.IsLoad() {
				addr := uint64(uint32(inst.stack[sp-1])) + in.B
				inst.stack[sp-1] = execLoad(memory, in.Op, addr)
			} else if in.Op.IsStore() {
				sp -= 2
				addr := uint64(uint32(inst.stack[sp])) + in.B
				execStore(memory, in.Op, addr, inst.stack[sp+1])
			} else {
				sp = execNumeric(inst.stack, sp, in.Op)
			}
		}
	}
}

// unwind moves arity carried values down to popTo and returns the
// new stack pointer.
func (inst *Instance) unwind(opBase, sp int, popTo int32, arity int8) int {
	dst := opBase + int(popTo)
	if arity > 0 {
		inst.stack[dst] = inst.stack[sp-1]
		return dst + 1
	}
	return dst
}

func (inst *Instance) resolveIndirect(slot, typeIdx uint32) uint32 {
	if int(slot) >= len(inst.base.Table) {
		trap.Throw(trap.TableOutOfBounds)
	}
	if !inst.base.Filled[slot] {
		trap.Throw(trap.IndirectCallNull)
	}
	fi := inst.base.Table[slot]
	ft, err := inst.mod.wasm.FuncTypeAt(fi)
	if err != nil {
		trap.Throwf(trap.HostError, "%v", err)
	}
	if !ft.Equal(inst.mod.wasm.Types[typeIdx]) {
		trap.Throw(trap.IndirectCallType)
	}
	return fi
}

func (inst *Instance) execPrefix(in *flatten.Instr, sp int) int {
	memory := inst.base.Mem
	s := inst.stack
	switch in.Sub {
	case wasm.SubMemoryCopy:
		sp -= 3
		memory.Copy(uint64(uint32(s[sp])), uint64(uint32(s[sp+1])), uint64(uint32(s[sp+2])))
	case wasm.SubMemoryFill:
		sp -= 3
		memory.Fill(uint64(uint32(s[sp])), uint64(s[sp+1]&0xff), uint64(uint32(s[sp+2])))
	case wasm.SubI32TruncSatF32S:
		s[sp-1] = uint64(uint32(numeric.TruncSatF32ToI32(math.Float32frombits(uint32(s[sp-1])))))
	case wasm.SubI32TruncSatF32U:
		s[sp-1] = uint64(numeric.TruncSatF32ToU32(math.Float32frombits(uint32(s[sp-1]))))
	case wasm.SubI32TruncSatF64S:
		s[sp-1] = uint64(uint32(numeric.TruncSatF64ToI32(math.Float64frombits(s[sp-1]))))
	case wasm.SubI32TruncSatF64U:
		s[sp-1] = uint64(numeric.TruncSatF64ToU32(math.Float64frombits(s[sp-1])))
	case wasm.SubI64TruncSatF32S:
		s[sp-1] = uint64(numeric.TruncSatF32ToI64(math.Float32frombits(uint32(s[sp-1]))))
	case wasm.SubI64TruncSatF32U:
		s[sp-1] = numeric.TruncSatF32ToU64(math.Float32frombits(uint32(s[sp-1])))
	case wasm.SubI64TruncSatF64S:
		s[sp-1] = uint64(numeric.TruncSatF64ToI64(math.Float64frombits(s[sp-1])))
	case wasm.SubI64TruncSatF64U:
		s[sp-1] = numeric.TruncSatF64ToU64(math.Float64frombits(s[sp-1]))
	default:
		trap.Throwf(trap.HostError, "unsupported prefixed op %v", in.Sub)
	}
	return sp
}

func execLoad(m *mem.Memory, op wasm.Opcode, addr uint64) uint64 {
	switch op {
	case wasm.OpI32Load, wasm.OpF32Load:
		return uint64(m.LoadU32(addr))
	case wasm.OpI64Load, wasm.OpF64Load:
		return m.LoadU64(addr)
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(m.LoadU8(addr)))))
	case wasm.OpI32Load8U:
		return uint64(m.LoadU8(addr))
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(m.LoadU16(addr)))))
	case wasm.OpI32Load16U:
		return uint64(m.LoadU16(addr))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(m.LoadU8(addr))))
	case wasm.OpI64Load8U:
		return uint64(m.LoadU8(addr))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(m.LoadU16(addr))))
	case wasm.OpI64Load16U:
		return uint64(m.LoadU16(addr))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(m.LoadU32(addr))))
	case wasm.OpI64Load32U:
		return uint64(m.LoadU32(addr))
	default:
		trap.Throwf(trap.HostError, "bad load opcode %v", op)
		return 0
	}
}

func execStore(m *mem.Memory, op wasm.Opcode, addr uint64, v uint64) {
	switch op {
	case wasm.OpI32Store, wasm.OpF32Store:
		m.StoreU32(addr, uint32(v))
	case wasm.OpI64Store, wasm.OpF64Store:
		m.StoreU64(addr, v)
	case wasm.OpI32Store8, wasm.OpI64Store8:
		m.StoreU8(addr, byte(v))
	case wasm.OpI32Store16, wasm.OpI64Store16:
		m.StoreU16(addr, uint16(v))
	case wasm.OpI64Store32:
		m.StoreU32(addr, uint32(v))
	default:
		trap.Throwf(trap.HostError, "bad store opcode %v", op)
	}
}

// execNumeric executes a pure numeric opcode on the operand stack
// and returns the new stack pointer.
func execNumeric(s []uint64, sp int, op wasm.Opcode) int {
	switch op {
	// i32 comparisons
	case wasm.OpI32Eqz:
		s[sp-1] = b2u(uint32(s[sp-1]) == 0)
	case wasm.OpI32Eq:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) == uint32(s[sp]))
	case wasm.OpI32Ne:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) != uint32(s[sp]))
	case wasm.OpI32LtS:
		sp--
		s[sp-1] = b2u(int32(s[sp-1]) < int32(s[sp]))
	case wasm.OpI32LtU:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) < uint32(s[sp]))
	case wasm.OpI32GtS:
		sp--
		s[sp-1] = b2u(int32(s[sp-1]) > int32(s[sp]))
	case wasm.OpI32GtU:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) > uint32(s[sp]))
	case wasm.OpI32LeS:
		sp--
		s[sp-1] = b2u(int32(s[sp-1]) <= int32(s[sp]))
	case wasm.OpI32LeU:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) <= uint32(s[sp]))
	case wasm.OpI32GeS:
		sp--
		s[sp-1] = b2u(int32(s[sp-1]) >= int32(s[sp]))
	case wasm.OpI32GeU:
		sp--
		s[sp-1] = b2u(uint32(s[sp-1]) >= uint32(s[sp]))
	// i64 comparisons
	case wasm.OpI64Eqz:
		s[sp-1] = b2u(s[sp-1] == 0)
	case wasm.OpI64Eq:
		sp--
		s[sp-1] = b2u(s[sp-1] == s[sp])
	case wasm.OpI64Ne:
		sp--
		s[sp-1] = b2u(s[sp-1] != s[sp])
	case wasm.OpI64LtS:
		sp--
		s[sp-1] = b2u(int64(s[sp-1]) < int64(s[sp]))
	case wasm.OpI64LtU:
		sp--
		s[sp-1] = b2u(s[sp-1] < s[sp])
	case wasm.OpI64GtS:
		sp--
		s[sp-1] = b2u(int64(s[sp-1]) > int64(s[sp]))
	case wasm.OpI64GtU:
		sp--
		s[sp-1] = b2u(s[sp-1] > s[sp])
	case wasm.OpI64LeS:
		sp--
		s[sp-1] = b2u(int64(s[sp-1]) <= int64(s[sp]))
	case wasm.OpI64LeU:
		sp--
		s[sp-1] = b2u(s[sp-1] <= s[sp])
	case wasm.OpI64GeS:
		sp--
		s[sp-1] = b2u(int64(s[sp-1]) >= int64(s[sp]))
	case wasm.OpI64GeU:
		sp--
		s[sp-1] = b2u(s[sp-1] >= s[sp])
	// f32 comparisons
	case wasm.OpF32Eq:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) == f32(s[sp]))
	case wasm.OpF32Ne:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) != f32(s[sp]))
	case wasm.OpF32Lt:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) < f32(s[sp]))
	case wasm.OpF32Gt:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) > f32(s[sp]))
	case wasm.OpF32Le:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) <= f32(s[sp]))
	case wasm.OpF32Ge:
		sp--
		s[sp-1] = b2u(f32(s[sp-1]) >= f32(s[sp]))
	// f64 comparisons
	case wasm.OpF64Eq:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) == f64(s[sp]))
	case wasm.OpF64Ne:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) != f64(s[sp]))
	case wasm.OpF64Lt:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) < f64(s[sp]))
	case wasm.OpF64Gt:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) > f64(s[sp]))
	case wasm.OpF64Le:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) <= f64(s[sp]))
	case wasm.OpF64Ge:
		sp--
		s[sp-1] = b2u(f64(s[sp-1]) >= f64(s[sp]))
	// i32 arithmetic
	case wasm.OpI32Clz:
		s[sp-1] = uint64(bits.LeadingZeros32(uint32(s[sp-1])))
	case wasm.OpI32Ctz:
		s[sp-1] = uint64(bits.TrailingZeros32(uint32(s[sp-1])))
	case wasm.OpI32Popcnt:
		s[sp-1] = uint64(bits.OnesCount32(uint32(s[sp-1])))
	case wasm.OpI32Add:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) + uint32(s[sp]))
	case wasm.OpI32Sub:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) - uint32(s[sp]))
	case wasm.OpI32Mul:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) * uint32(s[sp]))
	case wasm.OpI32DivS:
		sp--
		s[sp-1] = uint64(uint32(numeric.DivS32(int32(s[sp-1]), int32(s[sp]))))
	case wasm.OpI32DivU:
		sp--
		s[sp-1] = uint64(numeric.DivU32(uint32(s[sp-1]), uint32(s[sp])))
	case wasm.OpI32RemS:
		sp--
		s[sp-1] = uint64(uint32(numeric.RemS32(int32(s[sp-1]), int32(s[sp]))))
	case wasm.OpI32RemU:
		sp--
		s[sp-1] = uint64(numeric.RemU32(uint32(s[sp-1]), uint32(s[sp])))
	case wasm.OpI32And:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) & uint32(s[sp]))
	case wasm.OpI32Or:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) | uint32(s[sp]))
	case wasm.OpI32Xor:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) ^ uint32(s[sp]))
	case wasm.OpI32Shl:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) << (uint32(s[sp]) & 31))
	case wasm.OpI32ShrS:
		sp--
		s[sp-1] = uint64(uint32(int32(s[sp-1]) >> (uint32(s[sp]) & 31)))
	case wasm.OpI32ShrU:
		sp--
		s[sp-1] = uint64(uint32(s[sp-1]) >> (uint32(s[sp]) & 31))
	case wasm.OpI32Rotl:
		sp--
		s[sp-1] = uint64(bits.RotateLeft32(uint32(s[sp-1]), int(uint32(s[sp])&31)))
	case wasm.OpI32Rotr:
		sp--
		s[sp-1] = uint64(bits.RotateLeft32(uint32(s[sp-1]), -int(uint32(s[sp])&31)))
	// i64 arithmetic
	case wasm.OpI64Clz:
		s[sp-1] = uint64(bits.LeadingZeros64(s[sp-1]))
	case wasm.OpI64Ctz:
		s[sp-1] = uint64(bits.TrailingZeros64(s[sp-1]))
	case wasm.OpI64Popcnt:
		s[sp-1] = uint64(bits.OnesCount64(s[sp-1]))
	case wasm.OpI64Add:
		sp--
		s[sp-1] += s[sp]
	case wasm.OpI64Sub:
		sp--
		s[sp-1] -= s[sp]
	case wasm.OpI64Mul:
		sp--
		s[sp-1] *= s[sp]
	case wasm.OpI64DivS:
		sp--
		s[sp-1] = uint64(numeric.DivS64(int64(s[sp-1]), int64(s[sp])))
	case wasm.OpI64DivU:
		sp--
		s[sp-1] = numeric.DivU64(s[sp-1], s[sp])
	case wasm.OpI64RemS:
		sp--
		s[sp-1] = uint64(numeric.RemS64(int64(s[sp-1]), int64(s[sp])))
	case wasm.OpI64RemU:
		sp--
		s[sp-1] = numeric.RemU64(s[sp-1], s[sp])
	case wasm.OpI64And:
		sp--
		s[sp-1] &= s[sp]
	case wasm.OpI64Or:
		sp--
		s[sp-1] |= s[sp]
	case wasm.OpI64Xor:
		sp--
		s[sp-1] ^= s[sp]
	case wasm.OpI64Shl:
		sp--
		s[sp-1] <<= s[sp] & 63
	case wasm.OpI64ShrS:
		sp--
		s[sp-1] = uint64(int64(s[sp-1]) >> (s[sp] & 63))
	case wasm.OpI64ShrU:
		sp--
		s[sp-1] >>= s[sp] & 63
	case wasm.OpI64Rotl:
		sp--
		s[sp-1] = bits.RotateLeft64(s[sp-1], int(s[sp]&63))
	case wasm.OpI64Rotr:
		sp--
		s[sp-1] = bits.RotateLeft64(s[sp-1], -int(s[sp]&63))
	// f32 arithmetic
	case wasm.OpF32Abs:
		s[sp-1] = u32f(float32(math.Abs(float64(f32(s[sp-1])))))
	case wasm.OpF32Neg:
		s[sp-1] = u32f(-f32(s[sp-1]))
	case wasm.OpF32Ceil:
		s[sp-1] = u32f(float32(math.Ceil(float64(f32(s[sp-1])))))
	case wasm.OpF32Floor:
		s[sp-1] = u32f(float32(math.Floor(float64(f32(s[sp-1])))))
	case wasm.OpF32Trunc:
		s[sp-1] = u32f(float32(math.Trunc(float64(f32(s[sp-1])))))
	case wasm.OpF32Nearest:
		s[sp-1] = u32f(numeric.Nearest32(f32(s[sp-1])))
	case wasm.OpF32Sqrt:
		s[sp-1] = u32f(float32(math.Sqrt(float64(f32(s[sp-1])))))
	case wasm.OpF32Add:
		sp--
		s[sp-1] = u32f(f32(s[sp-1]) + f32(s[sp]))
	case wasm.OpF32Sub:
		sp--
		s[sp-1] = u32f(f32(s[sp-1]) - f32(s[sp]))
	case wasm.OpF32Mul:
		sp--
		s[sp-1] = u32f(f32(s[sp-1]) * f32(s[sp]))
	case wasm.OpF32Div:
		sp--
		s[sp-1] = u32f(f32(s[sp-1]) / f32(s[sp]))
	case wasm.OpF32Min:
		sp--
		s[sp-1] = u32f(numeric.Fmin32(f32(s[sp-1]), f32(s[sp])))
	case wasm.OpF32Max:
		sp--
		s[sp-1] = u32f(numeric.Fmax32(f32(s[sp-1]), f32(s[sp])))
	case wasm.OpF32Copysign:
		sp--
		s[sp-1] = u32f(float32(math.Copysign(float64(f32(s[sp-1])), float64(f32(s[sp])))))
	// f64 arithmetic
	case wasm.OpF64Abs:
		s[sp-1] = uf(math.Abs(f64(s[sp-1])))
	case wasm.OpF64Neg:
		s[sp-1] = uf(-f64(s[sp-1]))
	case wasm.OpF64Ceil:
		s[sp-1] = uf(math.Ceil(f64(s[sp-1])))
	case wasm.OpF64Floor:
		s[sp-1] = uf(math.Floor(f64(s[sp-1])))
	case wasm.OpF64Trunc:
		s[sp-1] = uf(math.Trunc(f64(s[sp-1])))
	case wasm.OpF64Nearest:
		s[sp-1] = uf(numeric.Nearest(f64(s[sp-1])))
	case wasm.OpF64Sqrt:
		s[sp-1] = uf(math.Sqrt(f64(s[sp-1])))
	case wasm.OpF64Add:
		sp--
		s[sp-1] = uf(f64(s[sp-1]) + f64(s[sp]))
	case wasm.OpF64Sub:
		sp--
		s[sp-1] = uf(f64(s[sp-1]) - f64(s[sp]))
	case wasm.OpF64Mul:
		sp--
		s[sp-1] = uf(f64(s[sp-1]) * f64(s[sp]))
	case wasm.OpF64Div:
		sp--
		s[sp-1] = uf(f64(s[sp-1]) / f64(s[sp]))
	case wasm.OpF64Min:
		sp--
		s[sp-1] = uf(numeric.Fmin(f64(s[sp-1]), f64(s[sp])))
	case wasm.OpF64Max:
		sp--
		s[sp-1] = uf(numeric.Fmax(f64(s[sp-1]), f64(s[sp])))
	case wasm.OpF64Copysign:
		sp--
		s[sp-1] = uf(math.Copysign(f64(s[sp-1]), f64(s[sp])))
	// conversions
	case wasm.OpI32WrapI64:
		s[sp-1] = uint64(uint32(s[sp-1]))
	case wasm.OpI32TruncF32S:
		s[sp-1] = uint64(uint32(numeric.TruncF32ToI32(f32(s[sp-1]))))
	case wasm.OpI32TruncF32U:
		s[sp-1] = uint64(numeric.TruncF32ToU32(f32(s[sp-1])))
	case wasm.OpI32TruncF64S:
		s[sp-1] = uint64(uint32(numeric.TruncF64ToI32(f64(s[sp-1]))))
	case wasm.OpI32TruncF64U:
		s[sp-1] = uint64(numeric.TruncF64ToU32(f64(s[sp-1])))
	case wasm.OpI64ExtendI32S:
		s[sp-1] = uint64(int64(int32(s[sp-1])))
	case wasm.OpI64ExtendI32U:
		s[sp-1] = uint64(uint32(s[sp-1]))
	case wasm.OpI64TruncF32S:
		s[sp-1] = uint64(numeric.TruncF32ToI64(f32(s[sp-1])))
	case wasm.OpI64TruncF32U:
		s[sp-1] = numeric.TruncF32ToU64(f32(s[sp-1]))
	case wasm.OpI64TruncF64S:
		s[sp-1] = uint64(numeric.TruncF64ToI64(f64(s[sp-1])))
	case wasm.OpI64TruncF64U:
		s[sp-1] = numeric.TruncF64ToU64(f64(s[sp-1]))
	case wasm.OpF32ConvertI32S:
		s[sp-1] = u32f(float32(int32(s[sp-1])))
	case wasm.OpF32ConvertI32U:
		s[sp-1] = u32f(float32(uint32(s[sp-1])))
	case wasm.OpF32ConvertI64S:
		s[sp-1] = u32f(float32(int64(s[sp-1])))
	case wasm.OpF32ConvertI64U:
		s[sp-1] = u32f(float32(s[sp-1]))
	case wasm.OpF32DemoteF64:
		s[sp-1] = u32f(float32(f64(s[sp-1])))
	case wasm.OpF64ConvertI32S:
		s[sp-1] = uf(float64(int32(s[sp-1])))
	case wasm.OpF64ConvertI32U:
		s[sp-1] = uf(float64(uint32(s[sp-1])))
	case wasm.OpF64ConvertI64S:
		s[sp-1] = uf(float64(int64(s[sp-1])))
	case wasm.OpF64ConvertI64U:
		s[sp-1] = uf(float64(s[sp-1]))
	case wasm.OpF64PromoteF32:
		s[sp-1] = uf(float64(f32(s[sp-1])))
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		// bit patterns are already shared
	case wasm.OpI32Extend8S:
		s[sp-1] = uint64(uint32(int32(int8(s[sp-1]))))
	case wasm.OpI32Extend16S:
		s[sp-1] = uint64(uint32(int32(int16(s[sp-1]))))
	case wasm.OpI64Extend8S:
		s[sp-1] = uint64(int64(int8(s[sp-1])))
	case wasm.OpI64Extend16S:
		s[sp-1] = uint64(int64(int16(s[sp-1])))
	case wasm.OpI64Extend32S:
		s[sp-1] = uint64(int64(int32(s[sp-1])))
	default:
		trap.Throwf(trap.HostError, "unimplemented opcode %v", op)
	}
	return sp
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func f32(v uint64) float32  { return math.Float32frombits(uint32(v)) }
func f64(v uint64) float64  { return math.Float64frombits(v) }
func u32f(f float32) uint64 { return uint64(math.Float32bits(f)) }
func uf(f float64) uint64   { return math.Float64bits(f) }
