// Package telemetry serves a live view of an obs.Registry over HTTP:
// Prometheus text metrics, a JSON snapshot, a server-sent-events
// stream of trace events, and the standard pprof endpoints. It is the
// "watch the experiment while it runs" companion to the post-hoc
// sinks in internal/obs — point a browser or a Prometheus scraper at
// a running sweep and the mmap-lock story unfolds in real time.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition (non-draining)
//	/snapshot     full obs.Snapshot as JSON (non-draining)
//	/events       SSE stream of drained trace events (consuming!)
//	/debug/pprof  net/http/pprof profiles
//
// Scope paths embed run labels ("run[engine=wavm strategy=uffd ...]").
// The Prometheus view lifts those bracketed key=value pairs into
// proper labels so PromQL can aggregate across runs.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/prof"
)

// BuildInfo identifies the running build for the leaps_build_info
// metric: the standard Prometheus idiom of a constant-1 gauge whose
// labels carry the identity, so dashboards can join any series
// against the exact binary and configuration that produced it.
type BuildInfo struct {
	GitSHA     string
	Strategies string // comma-joined strategy set the process sweeps
	Elide      bool
	RIR        bool
}

// HandlerOptions extends the plain registry handler with build
// identity and the guest sampling profiler.
type HandlerOptions struct {
	// Build, when non-zero, is exported as leaps_build_info on
	// /metrics.
	Build BuildInfo
	// Prof, when non-nil, serves its live snapshot as a pprof profile
	// at /debug/pprof/wasm (folded text via ?fmt=folded). Nil keeps
	// the route registered but returns 404, so scrapers can probe.
	Prof *prof.Profiler
}

// NewHandler returns an http.Handler serving the registry.
func NewHandler(reg *obs.Registry) http.Handler {
	return NewHandlerOptions(reg, HandlerOptions{})
}

// NewHandlerOptions is NewHandler with build identity and the guest
// profiler attached.
func NewHandlerOptions(reg *obs.Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", handleIndex)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeBuildInfo(w, opts.Build)
		writeProm(w, reg.Snapshot(false))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot(false))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		handleEvents(w, r, reg)
	})
	mux.HandleFunc("/debug/pprof/wasm", func(w http.ResponseWriter, r *http.Request) {
		handleWasmProfile(w, r, opts.Prof)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeBuildInfo emits the leaps_build_info gauge. A zero BuildInfo
// still exports (with empty labels): the metric's presence is how a
// scraper knows the process is one of ours.
func writeBuildInfo(w io.Writer, b BuildInfo) {
	fmt.Fprintf(w, "# TYPE leaps_build_info gauge\n")
	fmt.Fprintf(w, "leaps_build_info{git_sha=%q,strategies=%q,elide=%q,rir=%q} 1\n",
		b.GitSHA, b.Strategies, strconv.FormatBool(b.Elide), strconv.FormatBool(b.RIR))
}

// handleWasmProfile serves the guest sampling profiler's current
// snapshot: pprof protobuf by default (what `go tool pprof` fetches),
// folded-stack text with ?fmt=folded.
func handleWasmProfile(w http.ResponseWriter, r *http.Request, p *prof.Profiler) {
	if p == nil {
		http.Error(w, "no wasm profiler attached", http.StatusNotFound)
		return
	}
	snap := p.Snapshot()
	if r.URL.Query().Get("fmt") == "folded" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteFolded(w)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="wasm.pb.gz"`)
	_ = snap.WritePprof(w)
}

func handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `leapsbench telemetry
/metrics      Prometheus text metrics
/snapshot     JSON snapshot
/events       SSE trace-event stream (draining; ?n=<max>&timeout=<dur>)
/debug/pprof  Go profiles
/debug/pprof/wasm  guest sampling profile (pprof; ?fmt=folded for text)
`)
}

// handleEvents streams drained trace events as server-sent events.
// Draining is deliberate: the live stream is an alternative consumer
// of the same bounded ring the sinks drain, so a stream and a final
// -metrics dump partition the trace between them. ?n bounds the
// number of events sent and ?timeout the total stream duration
// (default 30s); both make the endpoint testable and curl-friendly.
func handleEvents(w http.ResponseWriter, r *http.Request, reg *obs.Registry) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	maxEvents := 0
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		maxEvents = n
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout", http.StatusBadRequest)
			return
		}
		timeout = d
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	sent := 0
	for {
		limit := 256
		if maxEvents > 0 && maxEvents-sent < limit {
			limit = maxEvents - sent
		}
		for _, ev := range reg.DrainEvents(limit) {
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: trace\ndata: %s\n\n", b)
			sent++
		}
		fl.Flush()
		if maxEvents > 0 && sent >= maxEvents {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			return
		case <-tick.C:
		}
	}
}

// promSeries is one exposition line under a metric family.
type promSeries struct {
	labels string // rendered {k="v",...} or ""
	value  string
}

// promFamilies groups series by family name so each family gets one
// TYPE line regardless of how many runs contribute series to it.
type promFamilies struct {
	typ    map[string]string // family -> counter|gauge
	series map[string][]promSeries
}

func newPromFamilies() *promFamilies {
	return &promFamilies{typ: make(map[string]string), series: make(map[string][]promSeries)}
}

func (pf *promFamilies) add(family, typ, labels, value string) {
	pf.typ[family] = typ
	pf.series[family] = append(pf.series[family], promSeries{labels: labels, value: value})
}

func (pf *promFamilies) write(w io.Writer) {
	names := make([]string, 0, len(pf.series))
	for n := range pf.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if t := pf.typ[n]; t != "" {
			fmt.Fprintf(w, "# TYPE %s %s\n", n, t)
		}
		ss := pf.series[n]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			fmt.Fprintf(w, "%s%s %s\n", n, s.labels, s.value)
		}
	}
}

// writeProm renders the snapshot in the Prometheus text format.
func writeProm(w io.Writer, snap *obs.Snapshot) {
	pf := newPromFamilies()
	for name, v := range snap.Counters {
		family, labels := promName(name, "")
		pf.add(family, "counter", labels, strconv.FormatInt(v, 10))
	}
	for name, v := range snap.Gauges {
		family, labels := promName(name, "")
		pf.add(family, "gauge", labels, strconv.FormatInt(v, 10))
	}
	for name, h := range snap.Histograms {
		family, labels := promName(name, "")
		pf.add(family+"_count", "counter", labels, strconv.FormatInt(h.Count, 10))
		pf.add(family+"_sum", "counter", labels, strconv.FormatInt(h.Sum, 10))
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.N
			if b.Le < 0 {
				continue // +Inf below covers the overflow bucket
			}
			_, le := promName(name, fmt.Sprintf("le=%d", b.Le))
			pf.add(family+"_bucket", "", le, strconv.FormatInt(cum, 10))
		}
		_, inf := promName(name, `le=+Inf`)
		pf.add(family+"_bucket", "", inf, strconv.FormatInt(h.Count, 10))
	}
	if snap.DroppedEvents > 0 {
		pf.add("leaps_trace_dropped_events", "counter", "", strconv.FormatInt(snap.DroppedEvents, 10))
	}
	pf.write(w)
}

// promName converts a registry path to a Prometheus family name plus
// a rendered label set. A bracketed run label in the path
// ("run[engine=wavm workload=gemm ...]"/...) becomes labels; the rest
// of the path is sanitized into the family name. extraPair, when
// non-empty ("k=v"), is appended to the label set (histogram le).
func promName(path, extraPair string) (family, labels string) {
	var pairs []string
	if i := strings.Index(path, "["); i >= 0 {
		if j := strings.Index(path[i:], "]"); j >= 0 {
			for _, kv := range strings.Fields(path[i+1 : i+j]) {
				if k, v, ok := strings.Cut(kv, "="); ok {
					pairs = append(pairs, fmt.Sprintf("%s=%q", sanitize(k), v))
				}
			}
			path = path[:i] + path[i+j+1:]
		}
	}
	if extraPair != "" {
		if k, v, ok := strings.Cut(extraPair, "="); ok {
			pairs = append(pairs, fmt.Sprintf("%s=%q", sanitize(k), v))
		}
	}
	family = "leaps_" + sanitize(strings.Trim(path, "/"))
	if len(pairs) > 0 {
		labels = "{" + strings.Join(pairs, ",") + "}"
	}
	return family, labels
}

// sanitize maps a path fragment to the Prometheus name alphabet.
func sanitize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Server is a live telemetry server bound to a listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves
// the registry until Close.
func Start(addr string, reg *obs.Registry) (*Server, error) {
	return StartOptions(addr, reg, HandlerOptions{})
}

// StartOptions is Start with build identity and the guest profiler
// attached to the handler.
func StartOptions(addr string, reg *obs.Registry, opts HandlerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: NewHandlerOptions(reg, opts)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
