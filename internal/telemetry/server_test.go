package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"time"

	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/prof"
)

// testRegistry builds a registry with one of everything, including a
// bracketed run label so the Prometheus label lifting is exercised.
func testRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	run := reg.Scope("run[engine=wavm workload=gemm strategy=mprotect threads=4]")
	run.Counter("iterations").Add(42)
	run.Gauge("resident_peak_bytes").Set(1 << 20)
	h := run.Histogram("iter_wall_ns")
	for _, v := range []int64{10, 100, 1000, 10000, 100000} {
		h.Observe(v)
	}
	vmm := run.Child("proc0").Child("vmm")
	vmm.Counter("lock_contended").Add(7)
	vmm.Emit(obs.EvLockContended, 1234, 0)
	vmm.Emit(obs.EvMmap, 4096, 0)
	return reg
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint line-parses the Prometheus exposition: every
// non-comment line must be "name{labels} value" with a numeric value,
// TYPE lines must precede their family, and the run label must have
// been lifted into labels.
func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRegistry()))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	typed := make(map[string]bool)
	series := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if parts[3] != "counter" && parts[3] != "gauge" {
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value | name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed series line: %q", line)
		}
		nameAndLabels, value := line[:sp], line[sp+1:]
		if _, err := jsonNumber(value); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		name := nameAndLabels
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = nameAndLabels[:i]
		}
		for _, r := range name {
			valid := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !valid {
				t.Fatalf("invalid metric name character %q in %q", r, name)
			}
		}
		series++
	}
	if series == 0 {
		t.Fatal("no series in /metrics output")
	}
	for _, want := range []string{
		`engine="wavm"`, `strategy="mprotect"`, `threads="4"`,
		"leaps_run_iterations", "leaps_run_proc0_vmm_lock_contended",
		"leaps_run_iter_wall_ns_bucket", `le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !typed["leaps_run_iterations"] {
		t.Error("no TYPE line for leaps_run_iterations")
	}
}

func jsonNumber(s string) (float64, error) {
	var f float64
	err := json.Unmarshal([]byte(s), &f)
	return f, err
}

// TestSnapshotEndpoint decodes the JSON snapshot and checks it is the
// registry's contents, and that serving it does not drain the ring.
func TestSnapshotEndpoint(t *testing.T) {
	reg := testRegistry()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	for i := 0; i < 2; i++ { // non-draining: identical both times
		code, body := get(t, srv, "/snapshot")
		if code != http.StatusOK {
			t.Fatalf("/snapshot status %d", code)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("snapshot not valid JSON: %v", err)
		}
		key := "run[engine=wavm workload=gemm strategy=mprotect threads=4]/iterations"
		if snap.Counters[key] != 42 {
			t.Fatalf("snapshot counter %s = %d, want 42", key, snap.Counters[key])
		}
	}
	if evs := reg.DrainEvents(0); len(evs) != 2 {
		t.Fatalf("snapshot endpoint drained the ring: %d events left, want 2", len(evs))
	}
}

// TestEventsEndpoint reads the SSE stream with a bounded event count
// and checks framing and payload.
func TestEventsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(testRegistry()))
	defer srv.Close()
	code, body := get(t, srv, "/events?n=2&timeout=5s")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var datas []string
	for _, line := range strings.Split(body, "\n") {
		if after, ok := strings.CutPrefix(line, "data: "); ok {
			datas = append(datas, after)
		}
	}
	if len(datas) != 2 {
		t.Fatalf("got %d SSE data frames, want 2\n%s", len(datas), body)
	}
	var ev obs.EventRecord
	if err := json.Unmarshal([]byte(datas[0]), &ev); err != nil {
		t.Fatalf("SSE payload not an EventRecord: %v", err)
	}
	if ev.Kind != "lock_contended" || ev.A != 1234 {
		t.Fatalf("unexpected first event %+v", ev)
	}
}

// TestEventsEndpointTimeout ensures an empty stream terminates by
// deadline rather than hanging.
func TestEventsEndpointTimeout(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obs.NewRegistry()))
	defer srv.Close()
	code, body := get(t, srv, "/events?timeout=100ms")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	if strings.Contains(body, "data: ") {
		t.Fatalf("expected no events, got %q", body)
	}
}

// TestEventsEndpointBadParams checks parameter validation.
func TestEventsEndpointBadParams(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obs.NewRegistry()))
	defer srv.Close()
	for _, path := range []string{"/events?n=-1", "/events?n=x", "/events?timeout=bogus", "/events?timeout=-1s"} {
		if code, _ := get(t, srv, path); code != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", path, code)
		}
	}
}

// TestPprofEndpoints smoke-tests the profile index and one profile.
func TestPprofEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obs.NewRegistry()))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestIndex checks the root page and 404 behaviour.
func TestIndex(t *testing.T) {
	srv := httptest.NewServer(NewHandler(obs.NewRegistry()))
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Fatalf("missing path did not 404 (%d)", code)
	}
}

// TestStartClose exercises the listener wrapper.
func TestStartClose(t *testing.T) {
	s, err := Start("127.0.0.1:0", testRegistry())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET via Start server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestBuildInfoMetric(t *testing.T) {
	// The plain handler exports the metric with empty identity.
	srv := httptest.NewServer(NewHandler(testRegistry()))
	defer srv.Close()
	_, body := get(t, srv, "/metrics")
	if !strings.Contains(body, "# TYPE leaps_build_info gauge") {
		t.Error("missing leaps_build_info TYPE line")
	}

	srv2 := httptest.NewServer(NewHandlerOptions(testRegistry(), HandlerOptions{
		Build: BuildInfo{GitSHA: "abc1234", Strategies: "none,clamp,trap,mprotect,uffd", Elide: true, RIR: true},
	}))
	defer srv2.Close()
	_, body = get(t, srv2, "/metrics")
	want := `leaps_build_info{git_sha="abc1234",strategies="none,clamp,trap,mprotect,uffd",elide="true",rir="true"} 1`
	if !strings.Contains(body, want) {
		t.Errorf("metrics missing %q:\n%s", want, body)
	}
}

func TestWasmProfileEndpoint(t *testing.T) {
	// Without a profiler the route answers 404 so scrapers can probe.
	srv := httptest.NewServer(NewHandler(testRegistry()))
	defer srv.Close()
	if code, _ := get(t, srv, "/debug/pprof/wasm"); code != http.StatusNotFound {
		t.Errorf("no-profiler endpoint returned %d, want 404", code)
	}

	p := prof.New(4001, nil)
	p.Start()
	defer p.Stop()
	c := p.Register("wavm", "trap", []string{"run"})
	c.Set(0, isa.ClassCheckTrap, prof.FlagChecked)
	deadline := time.After(5 * time.Second)
	for p.Snapshot().Samples == 0 {
		select {
		case <-deadline:
			t.Fatal("sampler produced no samples")
		case <-time.After(5 * time.Millisecond):
		}
	}

	srv2 := httptest.NewServer(NewHandlerOptions(testRegistry(), HandlerOptions{Prof: p}))
	defer srv2.Close()

	code, body := get(t, srv2, "/debug/pprof/wasm?fmt=folded")
	if code != http.StatusOK {
		t.Fatalf("folded endpoint returned %d", code)
	}
	if !strings.Contains(body, "wavm;trap;run;checktrap!check") {
		t.Errorf("folded output missing frame:\n%s", body)
	}

	resp, err := srv2.Client().Get(srv2.URL + "/debug/pprof/wasm")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint returned %d", resp.StatusCode)
	}
	sum, err := prof.ParsePprof(resp.Body)
	if err != nil {
		t.Fatalf("served profile does not parse as pprof: %v", err)
	}
	if sum.Samples == 0 {
		t.Error("served profile has no samples")
	}
}
