package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildTestTrace records a small span forest across two "strategies":
// run -> iter -> invoke -> fault -> kernel.mprotect (+ a lock wait)
// for mprotect, and run -> iter -> invoke -> fault -> uffd.copy for
// uffd, plus one deliberately incomplete span.
func buildTestTrace(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.EnableTracing(true)
	mp := r.Scope("run[engine=wavm workload=gemm strategy=mprotect threads=4]")
	uf := r.Scope("run[engine=wavm workload=gemm strategy=uffd threads=4]")

	record := func(sc *Scope, kernel SpanKind, withWait bool) {
		run := sc.StartSpan(SpanRun, SpanRef{})
		iter := sc.StartSpan(SpanIter, run.Ref())
		invoke := sc.StartSpan(SpanInvoke, iter.Ref())
		fault := sc.StartSpan(SpanFault, invoke.Ref())
		k := sc.StartSpan(kernel, fault.Ref())
		if withWait {
			sc.EndedSpan(SpanVMALockWait, k.Ref(), 1000)
		}
		time.Sleep(20 * time.Microsecond)
		k.End()
		fault.End()
		invoke.End()
		iter.End()
		run.End()
	}
	record(mp, SpanKernelMprotect, true)
	record(uf, SpanUffdCopy, false)

	// An open span (no End) must be counted incomplete, not rendered.
	_ = mp.StartSpan(SpanIter, SpanRef{})
	return r
}

// TestWriteChromeTrace validates the exported JSON: decodable, all
// duration events, balanced B/E nesting per tid with monotonic
// timestamps, and the incomplete span excluded but counted.
func TestWriteChromeTrace(t *testing.T) {
	r := buildTestTrace(t)
	snap := r.Snapshot(true)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Pid  int64             `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// 2 trees x 6 spans (incl. lock wait on one, minus one on the
	// other) = 11 complete spans -> 22 events.
	if len(doc.TraceEvents) != 22 {
		t.Fatalf("got %d trace events, want 22", len(doc.TraceEvents))
	}
	if got := doc.OtherData["incomplete_spans"]; got != float64(1) {
		t.Fatalf("incomplete_spans = %v, want 1", got)
	}

	// Per-tid: timestamps monotonic, B/E balanced and properly nested.
	type frame struct{ name string }
	stacks := map[int64][]frame{}
	lastTs := map[int64]float64{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" && ev.Ph != "E" {
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
		if ts, ok := lastTs[ev.Tid]; ok && ev.Ts < ts {
			t.Fatalf("timestamps not monotonic on tid %d: %f after %f", ev.Tid, ev.Ts, ts)
		}
		lastTs[ev.Tid] = ev.Ts
		names[ev.Name] = true
		st := stacks[ev.Tid]
		if ev.Ph == "B" {
			stacks[ev.Tid] = append(st, frame{ev.Name})
			continue
		}
		if len(st) == 0 {
			t.Fatalf("E %q on tid %d with empty stack", ev.Name, ev.Tid)
		}
		top := st[len(st)-1]
		if top.name != ev.Name {
			t.Fatalf("unbalanced nesting on tid %d: E %q closes B %q", ev.Tid, ev.Name, top.name)
		}
		stacks[ev.Tid] = st[:len(st)-1]
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("tid %d has %d unclosed spans", tid, len(st))
		}
	}
	for _, want := range []string{"run", "iter", "invoke", "fault", "kernel.mprotect", "uffd.copy", "vma_lock_wait"} {
		if !names[want] {
			t.Errorf("trace missing span name %q", want)
		}
	}
}

// TestAttribute checks the per-strategy bucket decomposition: the
// mprotect row sees lock-wait time, the uffd row does not, and
// exclusive time keeps parent buckets from double-counting children.
func TestAttribute(t *testing.T) {
	r := buildTestTrace(t)
	snap := r.Snapshot(true)
	// Bounds-check counters attribute by run label too.
	snap.Counters["run[engine=wavm workload=gemm strategy=mprotect threads=4]/proc0/engine/cycles/checktrap"] = 123
	rep := Attribute(snap)
	if rep.IncompleteSpans != 1 {
		t.Fatalf("incomplete = %d, want 1", rep.IncompleteSpans)
	}
	mp := rep.Row("mprotect")
	uf := rep.Row("uffd")
	if mp.Spans != 6 || uf.Spans != 5 {
		t.Fatalf("span counts mprotect=%d uffd=%d, want 6 and 5", mp.Spans, uf.Spans)
	}
	if mp.NsByBucket["vma_lock_wait"] == 0 {
		t.Error("mprotect row has no vma_lock_wait time")
	}
	if uf.NsByBucket["vma_lock_wait"] != 0 {
		t.Errorf("uffd row has vma_lock_wait time %d, want 0", uf.NsByBucket["vma_lock_wait"])
	}
	if mp.NsByBucket["page_populate"] == 0 || uf.NsByBucket["page_populate"] == 0 {
		t.Error("kernel op time missing from page_populate bucket")
	}
	if mp.BoundsCheckOps != 123 {
		t.Errorf("BoundsCheckOps = %d, want 123", mp.BoundsCheckOps)
	}
	// Exclusive-time invariant: the bucket totals must sum to at most
	// each tree's root duration (no double counting).
	for _, row := range rep.Rows {
		var sum int64
		for _, ns := range row.NsByBucket {
			sum += ns
		}
		if sum != row.TotalNs {
			t.Errorf("row %s: bucket sum %d != total %d", row.Strategy, sum, row.TotalNs)
		}
	}
	if mp.Share("vma_lock_wait") <= uf.Share("vma_lock_wait") {
		t.Errorf("lock-wait share mprotect (%.3f) not above uffd (%.3f)",
			mp.Share("vma_lock_wait"), uf.Share("vma_lock_wait"))
	}

	var buf bytes.Buffer
	if err := WriteAttribution(&buf, rep); err != nil {
		t.Fatalf("WriteAttribution: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"STRATEGY", "VMA_LOCK_WAIT", "mprotect", "uffd", "incomplete"} {
		if !strings.Contains(out, want) {
			t.Errorf("attribution table missing %q:\n%s", want, out)
		}
	}
}

// TestBuildSpanTreeOrphans: children of dropped/incomplete parents
// must surface as roots, not vanish.
func TestBuildSpanTreeOrphans(t *testing.T) {
	events := []EventRecord{
		// Parent 7 has only an end (begin dropped by ring overflow).
		{TimeNs: 5, Scope: "s", Kind: "span_end", A: 7<<8 | int64(SpanIter)},
		// Child of 7: complete.
		{TimeNs: 1, Scope: "s", Kind: "span_begin", A: 8<<8 | int64(SpanInvoke), B: 7},
		{TimeNs: 4, Scope: "s", Kind: "span_end", A: 8<<8 | int64(SpanInvoke)},
	}
	roots, incomplete := buildSpanTree(events)
	if incomplete != 1 {
		t.Fatalf("incomplete = %d, want 1", incomplete)
	}
	if len(roots) != 1 || roots[0].id != 8 {
		t.Fatalf("orphan child not promoted to root: %+v", roots)
	}
}

// TestScopeStrategy pins the label parser.
func TestScopeStrategy(t *testing.T) {
	cases := map[string]string{
		"run[engine=wavm workload=gemm strategy=uffd threads=4]/proc0/vmm": "uffd",
		"run[strategy=mprotect]": "mprotect",
		"plain/scope":            "(none)",
		"":                       "(none)",
	}
	for in, want := range cases {
		if got := scopeStrategy(in); got != want {
			t.Errorf("scopeStrategy(%q) = %q, want %q", in, got, want)
		}
	}
}
