package obs

// Trace export: reconstructing the causal span tree from a drained
// snapshot and rendering it two ways — Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing) and a critical-path
// attribution report that aggregates per-strategy time into the
// phase buckets the paper's analysis decomposes a run into.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// spanNode is one reconstructed span.
type spanNode struct {
	id       int64
	kind     SpanKind
	scope    string
	parent   int64
	start    int64
	end      int64
	hasStart bool
	hasEnd   bool
	children []*spanNode
}

func (n *spanNode) complete() bool { return n.hasStart && n.hasEnd && n.end >= n.start }

func (n *spanNode) dur() int64 { return n.end - n.start }

// buildSpanTree reconstructs spans from a snapshot's events. Spans
// missing either endpoint (begin dropped by the ring, or still open
// at the drain) are counted as incomplete and excluded; children
// whose parent is missing or incomplete are promoted to roots, so
// partial traces still render.
func buildSpanTree(events []EventRecord) (roots []*spanNode, incomplete int) {
	beginName, endName := EvSpanBegin.String(), EvSpanEnd.String()
	nodes := make(map[int64]*spanNode)
	get := func(id int64) *spanNode {
		n, ok := nodes[id]
		if !ok {
			n = &spanNode{id: id}
			nodes[id] = n
		}
		return n
	}
	for _, ev := range events {
		switch ev.Kind {
		case beginName:
			n := get(SpanEventID(ev.A))
			n.kind = SpanEventKind(ev.A)
			n.scope = ev.Scope
			n.parent = ev.B
			n.start = ev.TimeNs
			n.hasStart = true
		case endName:
			n := get(SpanEventID(ev.A))
			if !n.hasStart {
				n.kind = SpanEventKind(ev.A)
				n.scope = ev.Scope
			}
			n.end = ev.TimeNs
			n.hasEnd = true
		}
	}
	for _, n := range nodes {
		if !n.complete() {
			incomplete++
			continue
		}
		if p, ok := nodes[n.parent]; ok && n.parent != 0 && p.complete() {
			p.children = append(p.children, n)
		} else {
			roots = append(roots, n)
		}
	}
	byStart := func(s []*spanNode) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].start != s[j].start {
				return s[i].start < s[j].start
			}
			return s[i].id < s[j].id
		})
	}
	byStart(roots)
	for _, n := range nodes {
		byStart(n.children)
	}
	return roots, incomplete
}

// chromeEvent is one trace-event record in Chrome's JSON format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the snapshot's spans as Chrome trace-event
// JSON (duration events), loadable in Perfetto. Each root span and
// its subtree become one track (tid = root span ID), so concurrent
// workers render as parallel lanes. Child intervals are clamped into
// their parent, guaranteeing balanced, properly nested B/E pairs even
// when clocks of backdated spans straddle their parent's edges. The
// snapshot is not modified; call with a draining Snapshot(true).
func WriteChromeTrace(w io.Writer, snap *Snapshot) error {
	roots, incomplete := buildSpanTree(snap.Events)
	out := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"incomplete_spans": incomplete,
			"dropped_events":   snap.DroppedEvents,
		},
	}
	var emit func(n *spanNode, tid, lo, hi int64)
	emit = func(n *spanNode, tid, lo, hi int64) {
		start, end := n.start, n.end
		if start < lo {
			start = lo
		}
		if end > hi {
			end = hi
		}
		if end < start {
			end = start
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: n.kind.String(), Cat: "span", Ph: "B",
			Ts: float64(start) / 1e3, Pid: 1, Tid: tid,
			Args: map[string]string{"scope": n.scope},
		})
		for _, c := range n.children {
			emit(c, tid, start, end)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: n.kind.String(), Cat: "span", Ph: "E",
			Ts: float64(end) / 1e3, Pid: 1, Tid: tid,
		})
	}
	for _, r := range roots {
		emit(r, r.id, r.start, r.end)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Attribution bucket names, in report order. Time buckets hold
// exclusive span nanoseconds; bounds_check is special-cased (see
// AttributionRow.BoundsCheckOps).
var AttributionBuckets = []string{
	"exec", "hostcall", "fault_handle", "vma_lock_wait", "page_populate", "other",
}

// bucketOf maps a span kind to its attribution bucket.
func bucketOf(k SpanKind) string {
	switch k {
	case SpanInvoke:
		return "exec"
	case SpanHostcall:
		// Exclusive time only: faults taken while the host holds a
		// memory view open span-nest under the hostcall and keep
		// their own buckets, so "hostcall" is pure boundary cost.
		return "hostcall"
	case SpanFault:
		return "fault_handle"
	case SpanVMALockWait:
		return "vma_lock_wait"
	case SpanKernelMmap, SpanKernelMunmap, SpanKernelMprotect,
		SpanUffdCopy, SpanUffdDecommit:
		return "page_populate"
	default:
		return "other"
	}
}

// AttributionRow aggregates one strategy's time.
type AttributionRow struct {
	// Strategy is parsed from the run scope label ("(none)" for spans
	// outside a labeled run).
	Strategy string `json:"strategy"`
	// NsByBucket is exclusive time (span duration minus child span
	// durations) summed per bucket.
	NsByBucket map[string]int64 `json:"ns_by_bucket"`
	// TotalNs sums the buckets.
	TotalNs int64 `json:"total_ns"`
	// Spans counts complete spans attributed to the strategy.
	Spans int `json:"spans"`
	// BoundsCheckOps is the cycle-model count of executed software
	// bounds checks (engine/cycles/checktrap + checkclamp counters).
	// Inlined per-access checks are nanoseconds each and execute
	// inside the invoke span, so their wall time is part of exec and
	// is not separately span-measurable; the op count makes the
	// software-check cost visible next to the wall-time buckets.
	BoundsCheckOps int64 `json:"bounds_check_ops"`
}

// Share returns bucket ns as a fraction of the row total (0 when the
// row is empty).
func (r AttributionRow) Share(bucket string) float64 {
	if r.TotalNs == 0 {
		return 0
	}
	return float64(r.NsByBucket[bucket]) / float64(r.TotalNs)
}

// AttributionReport is the per-strategy critical-path decomposition.
type AttributionReport struct {
	Rows []AttributionRow `json:"rows"`
	// IncompleteSpans counts spans excluded for missing an endpoint.
	IncompleteSpans int `json:"incomplete_spans,omitempty"`
}

// Row returns the row for a strategy (zero row when absent).
func (rep AttributionReport) Row(strategy string) AttributionRow {
	for _, r := range rep.Rows {
		if r.Strategy == strategy {
			return r
		}
	}
	return AttributionRow{Strategy: strategy, NsByBucket: map[string]int64{}}
}

// scopeStrategy extracts the strategy label from a scope path of the
// form "run[engine=E workload=W strategy=S threads=N]/...".
func scopeStrategy(scope string) string {
	i := strings.Index(scope, "strategy=")
	if i < 0 {
		return "(none)"
	}
	rest := scope[i+len("strategy="):]
	if j := strings.IndexAny(rest, " ]"); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// Attribute computes the per-strategy attribution report from a
// drained snapshot: every complete span contributes its exclusive
// time (duration minus complete children) to the bucket of its kind,
// under the strategy parsed from its scope label.
func Attribute(snap *Snapshot) AttributionReport {
	roots, incomplete := buildSpanTree(snap.Events)
	rows := make(map[string]*AttributionRow)
	row := func(strategy string) *AttributionRow {
		r, ok := rows[strategy]
		if !ok {
			r = &AttributionRow{Strategy: strategy, NsByBucket: make(map[string]int64)}
			rows[strategy] = r
		}
		return r
	}
	var walk func(n *spanNode)
	walk = func(n *spanNode) {
		excl := n.dur()
		for _, c := range n.children {
			excl -= c.dur()
			walk(c)
		}
		if excl < 0 {
			excl = 0
		}
		r := row(scopeStrategy(n.scope))
		r.NsByBucket[bucketOf(n.kind)] += excl
		r.TotalNs += excl
		r.Spans++
	}
	for _, rt := range roots {
		walk(rt)
	}
	// Software bounds checks execute inline; surface their cycle-model
	// op counts from the engine counters.
	for name, v := range snap.Counters {
		if strings.HasSuffix(name, "/cycles/checktrap") || strings.HasSuffix(name, "/cycles/checkclamp") {
			row(scopeStrategy(name)).BoundsCheckOps += v
		}
	}
	rep := AttributionReport{IncompleteSpans: incomplete}
	for _, k := range sortedKeys(rows) {
		rep.Rows = append(rep.Rows, *rows[k])
	}
	return rep
}

// WriteAttribution renders the report as a human-readable table:
// per-strategy exclusive nanoseconds and shares per bucket, plus the
// software-check op count.
func WriteAttribution(w io.Writer, rep AttributionReport) error {
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprint(tw, "STRATEGY")
	for _, b := range AttributionBuckets {
		fmt.Fprintf(tw, "\t%s", strings.ToUpper(b))
	}
	fmt.Fprint(tw, "\tCHECK OPS\tSPANS\n")
	for _, r := range rep.Rows {
		fmt.Fprintf(tw, "%s", r.Strategy)
		for _, b := range AttributionBuckets {
			fmt.Fprintf(tw, "\t%d (%.1f%%)", r.NsByBucket[b], r.Share(b)*100)
		}
		fmt.Fprintf(tw, "\t%d\t%d\n", r.BoundsCheckOps, r.Spans)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if rep.IncompleteSpans > 0 {
		if _, err := fmt.Fprintf(w, "(%d incomplete spans excluded)\n", rep.IncompleteSpans); err != nil {
			return err
		}
	}
	return nil
}
