package obs

import "testing"

// snapOf builds a snapshot by observing values through the real
// bucketing path, so the tests exercise exactly what Snapshot sees.
func snapOf(vals ...int64) HistogramSnapshot {
	var h Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	return h.snapshot()
}

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.snapshot()
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %d, want 0", q, got)
		}
	}
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot percentiles nonzero: %+v", s)
	}
	// Degenerate q on a non-empty snapshot: q<=0 has no rank to
	// interpolate, q>1 clamps to the maximum.
	s = snapOf(100, 100)
	if got := s.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Errorf("Quantile(-1) = %d, want 0", got)
	}
	if got, want := s.Quantile(2), s.Quantile(1); got != want {
		t.Errorf("Quantile(2) = %d, want clamp to Quantile(1) = %d", got, want)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All mass in one bucket (65..128): every quantile interpolates
	// inside it, so results must stay within the bucket's bounds and
	// be monotone in q.
	s := snapOf(100, 100, 100, 100)
	prev := int64(-1)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		got := s.Quantile(q)
		if got < 64 || got > 128 {
			t.Errorf("Quantile(%v) = %d, outside bucket (64,128]", q, got)
		}
		if got < prev {
			t.Errorf("Quantile(%v) = %d not monotone (prev %d)", q, got, prev)
		}
		prev = got
	}
	// The bottom bucket (v <= 64) has lower bound 0.
	s = snapOf(1, 1)
	if got := s.Quantile(0.5); got < 0 || got > 64 {
		t.Errorf("bottom-bucket Quantile(0.5) = %d, outside [0,64]", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// All mass beyond the top finite bound lands in the overflow
	// bucket, which has no upper bound: quantiles there must report
	// the top finite bound (a deliberate under-estimate), never an
	// invented larger value, and never 0.
	huge := maxFiniteBound * 4
	s := snapOf(huge, huge, huge)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := s.Quantile(q); got != maxFiniteBound {
			t.Errorf("overflow-bucket Quantile(%v) = %d, want %d", q, got, maxFiniteBound)
		}
	}
	// Mixed mass: the median sits in the finite bucket, the p99 in
	// the overflow; the overflow answer still caps at the bound.
	s = snapOf(100, 100, 100, huge)
	if got := s.Quantile(0.5); got > 128 {
		t.Errorf("mixed Quantile(0.5) = %d, want within finite bucket", got)
	}
	if got := s.Quantile(1); got != maxFiniteBound {
		t.Errorf("mixed Quantile(1) = %d, want %d", got, maxFiniteBound)
	}
}
