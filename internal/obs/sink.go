package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Sink renders a snapshot to some destination. Implementations:
// JSONSink (machine-readable document), CSVSink (flat rows for
// spreadsheets), SummarySink (human-readable digest).
type Sink interface {
	Write(*Snapshot) error
}

// Flush snapshots the registry (draining the trace ring) and writes
// it to the sink.
func (r *Registry) Flush(sink Sink) error {
	return sink.Write(r.Snapshot(true))
}

// JSONSink writes the snapshot as one indented JSON document.
type JSONSink struct{ W io.Writer }

// Write implements Sink.
func (s JSONSink) Write(snap *Snapshot) error {
	enc := json.NewEncoder(s.W)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// CSVSink writes the snapshot as flat rows: one "counter"/"gauge"/
// "histogram" row per metric, then one "event" row per trace event.
type CSVSink struct{ W io.Writer }

// Write implements Sink.
func (s CSVSink) Write(snap *Snapshot) error {
	w := csv.NewWriter(s.W)
	if err := w.Write([]string{"type", "name", "value", "detail"}); err != nil {
		return err
	}
	for _, name := range sortedKeys(snap.Counters) {
		if err := w.Write([]string{"counter", name, strconv.FormatInt(snap.Counters[name], 10), ""}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if err := w.Write([]string{"gauge", name, strconv.FormatInt(snap.Gauges[name], 10), ""}); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		detail := fmt.Sprintf("sum=%d", h.Sum)
		if err := w.Write([]string{"histogram", name, strconv.FormatInt(h.Count, 10), detail}); err != nil {
			return err
		}
	}
	for _, ev := range snap.Events {
		detail := fmt.Sprintf("a=%d b=%d t_ns=%d", ev.A, ev.B, ev.TimeNs)
		if err := w.Write([]string{"event", ev.Scope + "/" + ev.Kind, "", detail}); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// SummarySink writes a short human-readable digest: every metric in
// lexical order, histogram means, and a per-kind event tally.
type SummarySink struct{ W io.Writer }

// Write implements Sink.
func (s SummarySink) Write(snap *Snapshot) error {
	for _, name := range sortedKeys(snap.Counters) {
		if v := snap.Counters[name]; v != 0 {
			if _, err := fmt.Fprintf(s.W, "%-52s %d\n", name, v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if _, err := fmt.Fprintf(s.W, "%-52s %d (gauge)\n", name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		mean := time.Duration(h.Sum / h.Count)
		if _, err := fmt.Fprintf(s.W, "%-52s n=%d mean=%v p50=%v p95=%v p99=%v\n",
			name, h.Count, mean,
			time.Duration(h.P50), time.Duration(h.P95), time.Duration(h.P99)); err != nil {
			return err
		}
	}
	if len(snap.Events) > 0 {
		tally := make(map[string]int)
		for _, ev := range snap.Events {
			tally[ev.Kind]++
		}
		if _, err := fmt.Fprintf(s.W, "trace: %d events (%d dropped)", len(snap.Events), snap.DroppedEvents); err != nil {
			return err
		}
		for _, kind := range sortedKeys(tally) {
			if _, err := fmt.Fprintf(s.W, " %s=%d", kind, tally[kind]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(s.W); err != nil {
			return err
		}
	} else if snap.DroppedEvents > 0 {
		if _, err := fmt.Fprintf(s.W, "trace: 0 events (%d dropped)\n", snap.DroppedEvents); err != nil {
			return err
		}
	}
	return nil
}
