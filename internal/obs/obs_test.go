package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("vmm")
	c := sc.Counter("mmap_calls")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	// Interning: same scope+name yields the same counter.
	if sc.Counter("mmap_calls") != c {
		t.Error("counter not interned")
	}
	if r.Scope("vmm") != sc {
		t.Error("scope not interned")
	}
	g := sc.Gauge("resident")
	g.Set(100)
	g.Add(-25)
	if got := g.Load(); got != 75 {
		t.Errorf("gauge = %d, want 75", got)
	}
	snap := r.Snapshot(false)
	if snap.Counters["vmm/mmap_calls"] != 4 || snap.Gauges["vmm/resident"] != 75 {
		t.Errorf("snapshot: %+v", snap)
	}
}

func TestNilSafety(t *testing.T) {
	var sc *Scope
	sc.Counter("x").Add(1)
	sc.Gauge("y").Set(2)
	sc.Histogram("z").Observe(3)
	sc.Emit(EvFault, 1, 2)
	if sc.Child("c") != nil {
		t.Error("nil scope child must be nil")
	}
	if sc.Counter("x").Load() != 0 {
		t.Error("nil counter must read 0")
	}
	var r *Registry
	if r.Scope("s") != nil {
		t.Error("nil registry scope must be nil")
	}
	if snap := r.Snapshot(true); snap == nil || len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty, not nil")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Scope("s").Histogram("lat")
	for _, v := range []int64{1, 64, 65, 128, 129, 1 << 40, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("count = %d, want 7", got)
	}
	snap := h.snapshot()
	var total int64
	for _, b := range snap.Buckets {
		total += b.N
	}
	if total != 7 {
		t.Errorf("bucket total = %d, want 7", total)
	}
	// 1, 64 and the clamped -5 land in bucket 0 (le=64); 65 and 128
	// in bucket 1 (le=128); 129 in bucket 2; 1<<40 overflows.
	want := map[int64]int64{64: 3, 128: 2, 256: 1, -1: 1}
	for _, b := range snap.Buckets {
		if want[b.Le] != b.N {
			t.Errorf("bucket le=%d: n=%d, want %d", b.Le, b.N, want[b.Le])
		}
	}
}

func TestRingFIFOAndOverflow(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 6; i++ {
		r.push(Event{A: int64(i)})
	}
	if got := r.dropped.Load(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	for i := 0; i < 4; i++ {
		ev, ok := r.pop()
		if !ok || ev.A != int64(i) {
			t.Fatalf("pop %d: %v %v", i, ev, ok)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("pop from empty ring succeeded")
	}
	// Ring is reusable after a full drain.
	if !r.push(Event{A: 99}) {
		t.Error("push after drain failed")
	}
	if ev, ok := r.pop(); !ok || ev.A != 99 {
		t.Errorf("pop after drain: %v %v", ev, ok)
	}
}

// TestConcurrentRegistry hammers counters, histograms and the trace
// ring from 8 goroutines (run under -race by scripts/verify.sh):
// counter and histogram totals must be exact; the trace ring is
// bounded-loss — delivered plus dropped equals emitted.
func TestConcurrentRegistry(t *testing.T) {
	const (
		goroutines = 8
		perG       = 10000
	)
	r := NewRegistrySized(1 << 10) // small ring: force drops
	shared := r.Scope("shared")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine scope creation races with other
			// registrations on purpose.
			own := r.Scope("worker").Child("own")
			c := shared.Counter("hits")
			h := shared.Histogram("lat")
			for i := 0; i < perG; i++ {
				c.Inc()
				own.Counter("local").Add(2)
				h.Observe(int64(i % 4096))
				shared.Emit(EvFault, int64(g), int64(i))
			}
		}(g)
	}
	wg.Wait()

	snap := r.Snapshot(true)
	if got := snap.Counters["shared/hits"]; got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := snap.Counters["worker/own/local"]; got != 2*goroutines*perG {
		t.Errorf("per-scope counter = %d, want %d", got, 2*goroutines*perG)
	}
	if got := snap.Histograms["shared/lat"].Count; got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	delivered := int64(len(snap.Events))
	if delivered+snap.DroppedEvents != goroutines*perG {
		t.Errorf("events delivered %d + dropped %d != emitted %d",
			delivered, snap.DroppedEvents, goroutines*perG)
	}
	if delivered == 0 {
		t.Error("no events delivered at all")
	}
	if snap.DroppedEvents == 0 {
		t.Error("expected drops with a small ring (bounded-loss path untested)")
	}
}

func TestSnapshotDrainPartitionsTrace(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("s")
	sc.Emit(EvTierUp, 1, 0)
	sc.Emit(EvGCPause, 2, 0)
	first := r.Snapshot(true)
	if len(first.Events) != 2 {
		t.Fatalf("first drain: %d events, want 2", len(first.Events))
	}
	sc.Emit(EvTrap, 3, 0)
	second := r.Snapshot(true)
	if len(second.Events) != 1 || second.Events[0].Kind != "trap" {
		t.Fatalf("second drain: %+v", second.Events)
	}
}

func TestSinks(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("run").Child("vmm")
	sc.Counter("lock_contended").Add(5)
	sc.Histogram("lock_wait_ns").Observe(1500)
	sc.Gauge("threads").Set(4)
	sc.Emit(EvLockContended, 1500, 0)

	var buf bytes.Buffer
	if err := (JSONSink{W: &buf}).Write(r.Snapshot(false)); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON sink output not valid JSON: %v", err)
	}
	counters, _ := doc["counters"].(map[string]any)
	if counters["run/vmm/lock_contended"] != float64(5) {
		t.Errorf("JSON counters: %v", counters)
	}

	buf.Reset()
	if err := r.Flush(CSVSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "counter,run/vmm/lock_contended,5") ||
		!strings.Contains(out, "lock_contended") {
		t.Errorf("CSV sink output:\n%s", out)
	}

	buf.Reset()
	sc.Emit(EvShootdown, 4, 0)
	if err := r.Flush(SummarySink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "run/vmm/lock_contended") ||
		!strings.Contains(buf.String(), "shootdown=1") {
		t.Errorf("summary sink output:\n%s", buf.String())
	}
}

func TestTraceDisabledRegistry(t *testing.T) {
	r := NewRegistrySized(0)
	sc := r.Scope("s")
	sc.Emit(EvFault, 1, 2) // must be a no-op, not a panic
	sc.Counter("c").Inc()
	snap := r.Snapshot(true)
	if len(snap.Events) != 0 || snap.DroppedEvents != 0 {
		t.Errorf("trace-disabled registry recorded events: %+v", snap)
	}
	if snap.Counters["s/c"] != 1 {
		t.Error("counters must still work with tracing disabled")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Scope("bench").Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkEmit(b *testing.B) {
	r := NewRegistry()
	sc := r.Scope("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sc.Emit(EvFault, 1, 2)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Scope("bench").Histogram("h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1234)
		}
	})
}
