package obs

import "sync/atomic"

// EventKind classifies trace events. The set covers every mechanism
// the paper's analysis leans on: mmap-lock acquisition and
// contention, fault handling per delivery path, TLB shootdowns,
// arena recycling, tier-up recompilation, GC pauses, and harness
// phase transitions.
type EventKind uint8

// Event kinds. The A/B payload convention is documented per kind.
const (
	// EvLockAcquired: mmap lock acquired. A = wait ns, B = 1 if the
	// acquisition had to wait (contended), else 0.
	EvLockAcquired EventKind = iota
	// EvLockContended: mmap lock acquisition that blocked. A = wait
	// ns. Emitted in addition to EvLockAcquired so contention can be
	// traced without recording every uncontended acquisition.
	EvLockContended
	// EvShootdown: TLB shootdown broadcast. A = active threads.
	EvShootdown
	// EvFault: page fault handled. A = byte offset, B = fault kind
	// (0 resolved, 1 segv/mprotect, 2 uffd, 3 minor/first-touch).
	EvFault
	// EvMmap: mmap call. A = backing bytes.
	EvMmap
	// EvMunmap: munmap call. A = backing bytes.
	EvMunmap
	// EvMprotect: mprotect call. A = length bytes.
	EvMprotect
	// EvGrow: wasm memory.grow. A = delta pages, B = strategy ordinal.
	EvGrow
	// EvArenaCreate: uffd arena freshly mmapped. A = backing bytes.
	EvArenaCreate
	// EvArenaReuse: pooled arena served to a new instance.
	EvArenaReuse
	// EvArenaRecycle: arena returned to the pool. A = bytes cleared.
	EvArenaRecycle
	// EvTierUp: optimizing tier swapped in. A = module ops.
	EvTierUp
	// EvGCPause: stop-the-world pause. A = pause ns.
	EvGCPause
	// EvTrap: invocation ended in a wasm trap. A = trap kind ordinal.
	EvTrap
	// EvPhase: harness phase transition. A = worker id, B = phase
	// (see PhaseWarmup..PhaseDone).
	EvPhase
	// EvSample: host sampler reading. A = CPU utilization in
	// hundredths of a percent, B = context switches/s.
	EvSample
	// EvInject: a fault-injection site fired. A = site ordinal,
	// B = 1-based occurrence number of the site.
	EvInject
	// EvRecover: a degradation path (retry, fallback) absorbed an
	// injected failure. A = site ordinal, B = injections at the site
	// so far.
	EvRecover
	// EvSpanBegin: a causal span opened. A = spanID<<8 | SpanKind,
	// B = parent span ID (0 = root). See span.go.
	EvSpanBegin
	// EvSpanEnd: a causal span closed. A = spanID<<8 | SpanKind.
	EvSpanEnd
	// EvProfSample: the guest-PC sampler observed a live instance.
	// A = the cell's packed (function index << 24 | opcode class << 8
	// | flags) word (see internal/prof).
	EvProfSample
	numEventKinds
)

// Harness phase codes carried in EvPhase.B.
const (
	PhaseWarmup int64 = iota
	PhaseMeasure
	PhaseCooldown
	PhaseDone
)

var eventKindNames = [numEventKinds]string{
	"lock_acquired", "lock_contended", "shootdown", "fault",
	"mmap", "munmap", "mprotect", "grow",
	"arena_create", "arena_reuse", "arena_recycle",
	"tier_up", "gc_pause", "trap", "phase", "sample",
	"inject", "recover", "span_begin", "span_end", "prof_sample",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one fixed-size trace record. It contains no pointers so
// emission never allocates.
type Event struct {
	TimeNs int64
	Scope  uint32
	Kind   EventKind
	A, B   int64
}

// ring is a bounded lock-free MPMC queue (Vyukov's design): each
// slot carries a sequence number that encodes whether it is free for
// the enqueuer or ready for the dequeuer of a given lap. Producers
// never block; when the ring is full the event is dropped and
// counted, giving the bounded-loss guarantee the trace needs under
// bursty emission.
type ring struct {
	mask    uint64
	slots   []ringSlot
	enq     atomic.Uint64
	deq     atomic.Uint64
	dropped atomic.Int64
}

type ringSlot struct {
	seq atomic.Uint64
	ev  Event
}

// newRing rounds capacity up to a power of two.
func newRing(capacity int) *ring {
	n := 1
	for n < capacity {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues ev, returning false (and counting a drop) when the
// ring is full.
func (r *ring) push(ev Event) bool {
	pos := r.enq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos: // slot free for this lap
			if r.enq.CompareAndSwap(pos, pos+1) {
				slot.ev = ev
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case seq < pos: // full: dequeuer hasn't freed this slot yet
			r.dropped.Add(1)
			return false
		default: // another producer advanced past us
			pos = r.enq.Load()
		}
	}
}

// pop dequeues the oldest event, returning false when empty.
func (r *ring) pop() (Event, bool) {
	pos := r.deq.Load()
	for {
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == pos+1: // slot ready for this lap
			if r.deq.CompareAndSwap(pos, pos+1) {
				ev := slot.ev
				slot.seq.Store(pos + uint64(len(r.slots)))
				return ev, true
			}
			pos = r.deq.Load()
		case seq <= pos: // empty
			return Event{}, false
		default:
			pos = r.deq.Load()
		}
	}
}
