package obs

import (
	"fmt"
	"sync"
	"testing"
)

// drainSpans drains the registry and reconstructs begin/end pairs
// keyed by span ID.
func drainSpans(r *Registry) (begins, ends map[int64]EventRecord) {
	begins, ends = map[int64]EventRecord{}, map[int64]EventRecord{}
	for _, ev := range r.DrainEvents(0) {
		switch ev.Kind {
		case "span_begin":
			begins[SpanEventID(ev.A)] = ev
		case "span_end":
			ends[SpanEventID(ev.A)] = ev
		}
	}
	return begins, ends
}

func TestSpanBasics(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope("test")

	// Disabled: StartSpan must return the inert span and record
	// nothing.
	sp := sc.StartSpan(SpanRun, SpanRef{})
	if sp.Ref().Valid() {
		t.Fatal("span recorded while tracing disabled")
	}
	sp.End()
	if evs := r.DrainEvents(0); len(evs) != 0 {
		t.Fatalf("disabled tracing produced %d events", len(evs))
	}

	r.EnableTracing(true)
	if !r.TracingEnabled() {
		t.Fatal("TracingEnabled false after enable")
	}
	root := sc.StartSpan(SpanRun, SpanRef{})
	child := sc.StartSpan(SpanIter, root.Ref())
	child.End()
	root.End()

	begins, ends := drainSpans(r)
	if len(begins) != 2 || len(ends) != 2 {
		t.Fatalf("got %d begins, %d ends, want 2 and 2", len(begins), len(ends))
	}
	cb, ok := begins[child.Ref().ID]
	if !ok {
		t.Fatal("child begin missing")
	}
	if cb.B != root.Ref().ID {
		t.Fatalf("child parent = %d, want %d", cb.B, root.Ref().ID)
	}
	if SpanEventKind(cb.A) != SpanIter {
		t.Fatalf("child kind = %v, want iter", SpanEventKind(cb.A))
	}
	rb := begins[root.Ref().ID]
	if rb.B != 0 {
		t.Fatalf("root parent = %d, want 0", rb.B)
	}
	if ce, ok := ends[child.Ref().ID]; !ok || ce.TimeNs < cb.TimeNs {
		t.Fatalf("child end missing or precedes begin (%v, %v)", ok, ce.TimeNs-cb.TimeNs)
	}
}

func TestEndedSpanBackdates(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(true)
	sc := r.Scope("test")
	const dur = int64(12345)
	sc.EndedSpan(SpanVMALockWait, SpanRef{ID: 99}, dur)
	begins, ends := drainSpans(r)
	if len(begins) != 1 || len(ends) != 1 {
		t.Fatalf("got %d begins, %d ends", len(begins), len(ends))
	}
	for id, b := range begins {
		e := ends[id]
		if got := e.TimeNs - b.TimeNs; got != dur {
			t.Fatalf("span duration %d, want %d", got, dur)
		}
		if b.B != 99 {
			t.Fatalf("parent %d, want 99", b.B)
		}
		if SpanEventKind(b.A) != SpanVMALockWait {
			t.Fatalf("kind %v, want vma_lock_wait", SpanEventKind(b.A))
		}
	}
	// Negative durations clamp rather than producing end < begin.
	sc.EndedSpan(SpanVMALockWait, SpanRef{}, -5)
	begins, ends = drainSpans(r)
	for id, b := range begins {
		if ends[id].TimeNs < b.TimeNs {
			t.Fatal("negative duration produced end before begin")
		}
	}
}

func TestSpanNilAndRinglessSafety(t *testing.T) {
	var nilScope *Scope
	sp := nilScope.StartSpan(SpanRun, SpanRef{})
	sp.End()
	nilScope.EndedSpan(SpanFault, SpanRef{}, 10)

	ringless := NewRegistrySized(0)
	ringless.EnableTracing(true) // tracing on but no ring: still inert
	sc := ringless.Scope("x")
	sp = sc.StartSpan(SpanRun, SpanRef{})
	if sp.Ref().Valid() {
		t.Fatal("ringless registry produced a live span")
	}
	sp.End()
	sc.EndedSpan(SpanFault, SpanRef{}, 10)

	var nilReg *Registry
	nilReg.EnableTracing(true)
	if nilReg.TracingEnabled() {
		t.Fatal("nil registry reports tracing enabled")
	}
}

// TestSpanKindNames pins the name table (trace consumers and the
// attribution report switch on these strings).
func TestSpanKindNames(t *testing.T) {
	want := map[SpanKind]string{
		SpanRun: "run", SpanIter: "iter", SpanInstantiate: "instantiate",
		SpanInvoke: "invoke", SpanFault: "fault",
		SpanKernelMmap: "kernel.mmap", SpanKernelMunmap: "kernel.munmap",
		SpanKernelMprotect: "kernel.mprotect", SpanVMALockWait: "vma_lock_wait",
		SpanUffdCopy: "uffd.copy", SpanUffdDecommit: "uffd.decommit",
		SpanPoolGet: "pool.get", SpanPoolPut: "pool.put",
		SpanTierUp: "tier_up", SpanGCPause: "gc_pause",
		SpanSafepointWait: "safepoint_wait",
		SpanHazardReclaim: "hazard.reclaim", SpanPoolDrain: "pool.drain",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if SpanKind(200).String() != "span(?)" {
		t.Errorf("out-of-range kind name = %q", SpanKind(200).String())
	}
}

// TestSpanConcurrent hammers span emission from 8 goroutines (run
// under -race in CI): IDs must stay unique and every drained pair
// consistent, with drops (not corruption) under overflow.
func TestSpanConcurrent(t *testing.T) {
	r := NewRegistrySized(1 << 16)
	r.EnableTracing(true)
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sc := r.Scope(fmt.Sprintf("worker%d", g))
			for i := 0; i < perG; i++ {
				root := sc.StartSpan(SpanIter, SpanRef{})
				child := sc.StartSpan(SpanInvoke, root.Ref())
				sc.EndedSpan(SpanVMALockWait, child.Ref(), int64(i))
				child.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()

	begins, ends := drainSpans(r)
	// 3 spans per iteration; ring is big enough to hold all 6 events.
	wantSpans := goroutines * perG * 3
	if len(begins) != wantSpans || len(ends) != wantSpans {
		t.Fatalf("got %d begins, %d ends, want %d", len(begins), len(ends), wantSpans)
	}
	for id, b := range begins {
		e, ok := ends[id]
		if !ok {
			t.Fatalf("span %d has no end", id)
		}
		if SpanEventKind(e.A) != SpanEventKind(b.A) {
			t.Fatalf("span %d kind mismatch: begin %v end %v", id, SpanEventKind(b.A), SpanEventKind(e.A))
		}
		if e.TimeNs < b.TimeNs {
			t.Fatalf("span %d ends before it begins", id)
		}
	}
}

// BenchmarkSpanDisabled measures the documented zero-cost path: a
// StartSpan/End pair with tracing off must be a couple of loads.
func BenchmarkSpanDisabled(b *testing.B) {
	r := NewRegistry()
	sc := r.Scope("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := sc.StartSpan(SpanInvoke, SpanRef{})
		sp.End()
	}
}

// BenchmarkSpanEnabled measures the recording path (two ring pushes).
func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRegistry()
	r.EnableTracing(true)
	sc := r.Scope("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := sc.StartSpan(SpanInvoke, SpanRef{})
		sp.End()
	}
}
