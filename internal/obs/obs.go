// Package obs is the process-wide observability spine: one registry
// of allocation-free metrics (atomic counters, gauges, fixed-bucket
// histograms) plus a lock-free ring buffer of typed trace events,
// shared by every layer of the simulator — the simulated kernel
// (vmm), the linear-memory strategies (mem), the engines, the
// benchmarking harness and the host sampler (sysmon).
//
// The design goal is that the paper's mechanism claims — "mprotect
// serializes on the mmap lock, uffd does not" — ship attached to
// every figure: each harness run labels a Scope, each layer registers
// its counters under that scope, and a single Snapshot carries the
// whole cross-layer story to a pluggable sink (JSON, CSV, or a human
// summary).
//
// Hot-path discipline: Counter.Add and Histogram.Observe are single
// atomic RMWs on pre-resolved pointers; Scope.Emit writes one fixed-
// size slot of a bounded MPMC ring and drops (counting the drop)
// rather than blocking when the ring is full. Metric registration
// (the map lookups) happens at setup time only. All metric and scope
// methods are nil-receiver safe no-ops so uninstrumented paths cost
// one predictable branch.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (resident bytes, active
// threads, last sampled CPU utilization).
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of exponential histogram buckets. Bucket
// i counts observations v with 64<<(i-1) < v <= 64<<i (bucket 0
// catches v <= 64); the last bucket is the overflow. With 26 buckets
// the top finite bound is 64<<24 ns ≈ 1.07 s — ample for the
// latencies under study (lock waits, fault handling, GC pauses).
const histBuckets = 26

// Histogram is a fixed-bucket exponential latency histogram. The
// unit is conventionally nanoseconds but the histogram itself is
// unit-agnostic.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	if v <= 64 {
		return 0
	}
	b := bits.Len64(uint64(v-1)) - 6 // 65..128 -> 1, 129..256 -> 2, ...
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper bound of bucket i, or -1
// for the overflow bucket.
func BucketBound(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 64 << i
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramSnapshot is a plain-value copy of a histogram, including
// bucket-interpolated percentiles (0 when the histogram is empty).
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
	P50     int64         `json:"p50,omitempty"`
	P95     int64         `json:"p95,omitempty"`
	P99     int64         `json:"p99,omitempty"`
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the containing bucket. The overflow bucket has
// no upper bound, so quantiles landing there report its lower bound —
// a deliberate under-estimate rather than an invented tail.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		prev := cum
		cum += float64(b.N)
		if cum < rank {
			continue
		}
		upper := b.Le
		if upper < 0 { // overflow bucket
			return maxFiniteBound
		}
		lower := int64(0)
		if upper > 64 {
			lower = upper / 2
		}
		frac := (rank - prev) / float64(b.N)
		return lower + int64(frac*float64(upper-lower))
	}
	return maxFiniteBound
}

// maxFiniteBound is the top finite bucket bound, reported for
// quantiles that land in the overflow bucket.
const maxFiniteBound = int64(64) << (histBuckets - 2)

// BucketCount is one non-empty bucket: Le is the inclusive upper
// bound (-1 for the overflow bucket), N the observation count.
type BucketCount struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketBound(i), N: n})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// DefaultTraceCapacity is the trace-ring size (slots) of a registry
// built with NewRegistry.
const DefaultTraceCapacity = 1 << 14

// Registry holds every metric and the trace ring for one observation
// domain (typically one benchmark run, or one simulated process when
// used standalone). Registration is mutex-guarded; the returned
// metric handles are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	scopes   map[string]*Scope
	// scopeNames[i] is the scope path interned as id i, resolved when
	// events are snapshotted.
	scopeNames []string

	ring  *ring
	start time.Time

	// tracing gates span recording (span.go); spanIDs allocates
	// registry-unique span IDs.
	tracing atomic.Bool
	spanIDs atomic.Int64
}

// NewRegistry returns a registry with the default trace capacity.
func NewRegistry() *Registry { return NewRegistrySized(DefaultTraceCapacity) }

// NewRegistrySized returns a registry whose trace ring holds
// capacity events (rounded up to a power of two); capacity <= 0
// disables event tracing entirely (Emit becomes a no-op), which is
// the "obs disabled" configuration for overhead comparisons.
func NewRegistrySized(capacity int) *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		scopes:   make(map[string]*Scope),
		start:    time.Now(),
	}
	if capacity > 0 {
		r.ring = newRing(capacity)
	}
	return r
}

// Scope returns the named top-level scope, creating it on first use.
// Scopes are interned: the same name always yields the same scope
// (and therefore the same metrics).
func (r *Registry) Scope(name string) *Scope {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scopeLocked(name)
}

func (r *Registry) scopeLocked(path string) *Scope {
	if s, ok := r.scopes[path]; ok {
		return s
	}
	s := &Scope{reg: r, path: path, id: uint32(len(r.scopeNames))}
	r.scopeNames = append(r.scopeNames, path)
	r.scopes[path] = s
	return s
}

// now returns nanoseconds since the registry started.
func (r *Registry) now() int64 { return int64(time.Since(r.start)) }

// Scope is a named view into a registry. Metrics created through a
// scope are registered under "<scope path>/<metric name>"; events
// emitted through it carry the scope's interned id. A nil scope is a
// valid no-op sink.
type Scope struct {
	reg  *Registry
	path string
	id   uint32
}

// Name returns the scope's full path ("" for nil).
func (s *Scope) Name() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Registry returns the owning registry (nil for a nil scope).
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Child returns the sub-scope "<path>/<name>".
func (s *Scope) Child(name string) *Scope {
	if s == nil {
		return nil
	}
	return s.reg.Scope(s.path + "/" + name)
}

// Counter returns the scope's named counter, registering it on first
// use. Returns nil (a no-op counter) on a nil scope.
func (s *Scope) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	r := s.reg
	full := s.path + "/" + name
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Gauge returns the scope's named gauge, registering it on first use.
func (s *Scope) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	r := s.reg
	full := s.path + "/" + name
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[full]
	if !ok {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// Histogram returns the scope's named histogram, registering it on
// first use.
func (s *Scope) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	r := s.reg
	full := s.path + "/" + name
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[full]
	if !ok {
		h = &Histogram{}
		r.hists[full] = h
	}
	return h
}

// Emit appends a typed event to the registry's trace ring. It never
// blocks: when the ring is full the event is dropped and counted.
// No-op on a nil scope or a trace-disabled registry.
func (s *Scope) Emit(kind EventKind, a, b int64) {
	if s == nil || s.reg.ring == nil {
		return
	}
	s.reg.ring.push(Event{TimeNs: s.reg.now(), Scope: s.id, Kind: kind, A: a, B: b})
}

// Snapshot is a consistent plain-value copy of a registry: every
// counter, gauge and histogram by full name, plus (optionally) the
// drained trace events.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []EventRecord                `json:"events,omitempty"`
	// DroppedEvents counts Emit calls lost to a full trace ring
	// (bounded loss: Events plus drops equals emissions).
	DroppedEvents int64 `json:"dropped_events,omitempty"`
}

// EventRecord is one trace event with its scope and kind resolved to
// strings, ready for sinks.
type EventRecord struct {
	TimeNs int64  `json:"t_ns"`
	Scope  string `json:"scope"`
	Kind   string `json:"kind"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// Snapshot copies all metrics; when drainEvents is set it also
// consumes the trace ring into the snapshot (events are removed from
// the ring, so two draining snapshots partition the trace).
func (r *Registry) Snapshot(drainEvents bool) *Snapshot {
	if r == nil {
		return &Snapshot{Counters: map[string]int64{}}
	}
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	names := append([]string(nil), r.scopeNames...)
	r.mu.Unlock()

	if r.ring != nil {
		s.DroppedEvents = r.ring.dropped.Load()
		if drainEvents {
			s.Events = r.drainInto(nil, 0, names)
		}
	}
	return s
}

// DrainEvents consumes up to limit events from the trace ring
// (limit <= 0 means all currently buffered), resolving scope names.
// Like a draining Snapshot, consumed events are removed: concurrent
// drainers partition the trace. Returns nil on a nil registry or one
// without a ring.
func (r *Registry) DrainEvents(limit int) []EventRecord {
	if r == nil || r.ring == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.scopeNames...)
	r.mu.Unlock()
	return r.drainInto(nil, limit, names)
}

// drainInto pops ring events into dst (at most limit when limit > 0).
func (r *Registry) drainInto(dst []EventRecord, limit int, names []string) []EventRecord {
	for limit <= 0 || len(dst) < limit {
		ev, ok := r.ring.pop()
		if !ok {
			break
		}
		scope := ""
		if int(ev.Scope) < len(names) {
			scope = names[ev.Scope]
		}
		dst = append(dst, EventRecord{
			TimeNs: ev.TimeNs,
			Scope:  scope,
			Kind:   ev.Kind.String(),
			A:      ev.A,
			B:      ev.B,
		})
	}
	return dst
}

// sortedKeys returns map keys in lexical order (for stable sinks).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
