package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// failWriter errors after allowing n bytes through.
type failWriter struct {
	n       int
	written int
}

var errSink = errors.New("sink: simulated write failure")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		allowed := w.n - w.written
		if allowed < 0 {
			allowed = 0
		}
		w.written += allowed
		return allowed, errSink
	}
	w.written += len(p)
	return len(p), nil
}

// TestCSVSinkEscaping round-trips metric names containing every CSV
// special character (quotes, commas, newlines) through a csv.Reader.
func TestCSVSinkEscaping(t *testing.T) {
	reg := NewRegistry()
	nasty := `run[engine="wavm",mode=a b]` + "\nsecond/line"
	reg.Scope(nasty).Counter(`count,with"quote`).Add(5)
	reg.Scope(nasty).Emit(EvMmap, 1, 2)

	var buf bytes.Buffer
	if err := reg.Flush(CSVSink{W: &buf}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not parseable CSV: %v", err)
	}
	found := false
	wantName := nasty + `/count,with"quote`
	for _, row := range rows[1:] {
		if row[0] == "counter" && row[1] == wantName && row[2] == "5" {
			found = true
		}
	}
	if !found {
		t.Fatalf("escaped counter row not found in:\n%v", rows)
	}
}

// TestSinkWriteFailures ensures every sink surfaces writer errors
// instead of swallowing them, at various truncation points.
func TestSinkWriteFailures(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("s")
	sc.Counter("c").Add(1)
	sc.Gauge("g").Set(2)
	sc.Histogram("h").Observe(100)
	sc.Emit(EvMmap, 1, 2)
	snap := reg.Snapshot(true)

	sinks := map[string]func(*failWriter) Sink{
		"json":    func(w *failWriter) Sink { return JSONSink{W: w} },
		"csv":     func(w *failWriter) Sink { return CSVSink{W: w} },
		"summary": func(w *failWriter) Sink { return SummarySink{W: w} },
	}
	for name, mk := range sinks {
		for _, allow := range []int{0, 10, 100} {
			sink := mk(&failWriter{n: allow})
			if err := sink.Write(snap); !errors.Is(err, errSink) {
				t.Errorf("%s sink with %d-byte writer: error = %v, want errSink", name, allow, err)
			}
		}
	}
}

// TestFlushEmptyRegistry: a registry with nothing registered must
// flush cleanly through every sink, and a nil registry must too.
func TestFlushEmptyRegistry(t *testing.T) {
	for _, reg := range []*Registry{NewRegistry(), nil} {
		var jb, cb, sb bytes.Buffer
		if err := reg.Flush(JSONSink{W: &jb}); err != nil {
			t.Fatalf("JSON flush: %v", err)
		}
		var snap Snapshot
		if err := json.Unmarshal(jb.Bytes(), &snap); err != nil {
			t.Fatalf("empty JSON snapshot invalid: %v", err)
		}
		if len(snap.Counters) != 0 {
			t.Fatalf("empty registry has counters: %v", snap.Counters)
		}
		if err := reg.Flush(CSVSink{W: &cb}); err != nil {
			t.Fatalf("CSV flush: %v", err)
		}
		if rows, err := csv.NewReader(&cb).ReadAll(); err != nil || len(rows) != 1 {
			t.Fatalf("empty CSV: rows=%v err=%v (want header only)", rows, err)
		}
		if err := reg.Flush(SummarySink{W: &sb}); err != nil {
			t.Fatalf("summary flush: %v", err)
		}
		if sb.Len() != 0 {
			t.Fatalf("empty summary wrote %q", sb.String())
		}
	}
}

// TestSummarySinkPercentilesAndDrops checks the new p50/p95/p99
// digest line and that drops are reported even with zero events.
func TestSummarySinkPercentilesAndDrops(t *testing.T) {
	reg := NewRegistry()
	h := reg.Scope("run").Histogram("iter_wall_ns")
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) * 1000)
	}
	var buf bytes.Buffer
	if err := reg.Flush(SummarySink{W: &buf}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"p50=", "p95=", "p99=", "n=100"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	// Overflow the 4-slot ring: the drop count must appear even after
	// the events themselves were lost... and with events present too.
	small := NewRegistrySized(4)
	sc := small.Scope("s")
	for i := 0; i < 10; i++ {
		sc.Emit(EvMmap, int64(i), 0)
	}
	buf.Reset()
	if err := small.Flush(SummarySink{W: &buf}); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if !strings.Contains(buf.String(), "dropped") {
		t.Fatalf("summary does not report drops:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("(%d dropped)", 6)) {
		t.Fatalf("summary drop count wrong:\n%s", buf.String())
	}
}

// TestHistogramQuantiles pins the interpolation: exact bucket
// boundaries, overflow clamping, and empty histograms.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if q := h.snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", q)
	}
	// All mass in bucket 0 (<= 64): quantiles interpolate within [0, 64].
	for i := 0; i < 10; i++ {
		h.Observe(10)
	}
	s := h.snapshot()
	if s.P50 < 0 || s.P50 > 64 {
		t.Fatalf("p50 = %d outside bucket 0 bounds", s.P50)
	}
	if s.P99 > 64 {
		t.Fatalf("p99 = %d outside bucket 0 bounds", s.P99)
	}
	// Overflow bucket reports the top finite bound, not an invention.
	var o Histogram
	o.Observe(int64(1) << 40)
	if got := o.snapshot().P50; got != maxFiniteBound {
		t.Fatalf("overflow p50 = %d, want %d", got, maxFiniteBound)
	}
	// Quantile argument clamping.
	if got := s.Quantile(2.0); got < s.P99 {
		t.Fatalf("Quantile(2.0) = %d below p99 %d", got, s.P99)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("Quantile(-1) = %d, want 0", got)
	}
}
