package obs

// Causal span tracing: begin/end pairs recorded into the registry's
// existing lock-free event ring, with parent links so a drained trace
// reconstructs the tree of what happened inside a run — iteration →
// invoke → fault → kernel.mprotect → vma_lock_wait. Spans are
// allocation-free (a Span is a three-word value, events are the
// fixed-size ring slots) and follow the ring's drop-don't-block
// discipline. The whole layer is off by default: StartSpan costs a
// nil check plus one atomic load when tracing is disabled, so
// instrumented hot paths pay nothing measurable until someone calls
// Registry.EnableTracing(true).
//
// Encoding: a span occupies two events, EvSpanBegin and EvSpanEnd.
// Both carry A = spanID<<8 | kind (IDs are registry-unique, kinds fit
// in a byte); the begin event's B is the parent span's ID (0 = root).
// Lock waits, which are only known retroactively, use EndedSpan to
// emit a completed pair whose begin timestamp is backdated by the
// measured duration.

// SpanKind classifies spans. The set mirrors the layers the paper's
// analysis decomposes a run into: harness phases, engine execution,
// fault handling, and the kernel operations under the mmap lock.
type SpanKind uint8

// Span kinds.
const (
	// SpanNone is the zero value; never recorded.
	SpanNone SpanKind = iota
	// SpanRun covers one harness.Run (all phases, all workers).
	SpanRun
	// SpanIter covers one isolate lifecycle (instantiate → invoke →
	// close) inside a run.
	SpanIter
	// SpanInstantiate covers engine-independent instantiation
	// (memory mmap, segment initialization).
	SpanInstantiate
	// SpanInvoke covers one exported-function invocation.
	SpanInvoke
	// SpanFault covers one simulated signal-handler entry (SIGSEGV
	// or SIGBUS path) resolving a missed access.
	SpanFault
	// SpanKernelMmap/Munmap/Mprotect cover the simulated syscalls,
	// including their time under the mmap lock.
	SpanKernelMmap
	SpanKernelMunmap
	SpanKernelMprotect
	// SpanVMALockWait is the time a thread spent blocked on the
	// process mmap lock before acquiring it (emitted retroactively,
	// only for waits past the contention threshold).
	SpanVMALockWait
	// SpanUffdCopy covers lock-free userfaultfd page population
	// (UFFDIO_ZEROPAGE analog); SpanUffdDecommit the reverse
	// (MADV_DONTNEED analog) during arena recycling.
	SpanUffdCopy
	SpanUffdDecommit
	// SpanPoolGet/Put cover arena-pool acquisition and recycling.
	SpanPoolGet
	SpanPoolPut
	// SpanTierUp covers one background optimizing-tier compile in the
	// tiered engine (the V8 TurboFan analog), including the simulated
	// compiler work.
	SpanTierUp
	// SpanGCPause covers one stop-the-world collection in the tiered
	// engine: safepoint wait for running invocations plus the pause.
	SpanGCPause
	// SpanSafepointWait is the time an invocation spent blocked on
	// the tiered engine's world lock waiting out a GC pause (emitted
	// retroactively, like SpanVMALockWait, past the same threshold).
	SpanSafepointWait
	// SpanHazardReclaim covers one reclamation batch in the hazard
	// domain: retired arenas freed once no reader protects them.
	SpanHazardReclaim
	// SpanPoolDrain covers ArenaPool.Drain teardown (kernel.munmap
	// children for every pooled arena).
	SpanPoolDrain
	// SpanRIRLower covers one function body's trip through the
	// register-IR lowering pipeline (build, optimize, lower, fuse);
	// emitted retroactively once the pipeline finishes.
	SpanRIRLower
	// SpanSnapshot covers freezing a template instance's state (the
	// memory-image copy plus globals/table capture).
	SpanSnapshot
	// SpanFork covers instantiating one instance from a template
	// snapshot (copy-on-write mapping setup, state restore).
	SpanFork
	// SpanHostcall covers one host (WASI) function call made by the
	// guest: from the engine handing control to the embedder until
	// the host function returns. Nested under the invoke span, so
	// attribution can split guest execution from boundary time.
	SpanHostcall
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"none", "run", "iter", "instantiate", "invoke", "fault",
	"kernel.mmap", "kernel.munmap", "kernel.mprotect",
	"vma_lock_wait", "uffd.copy", "uffd.decommit",
	"pool.get", "pool.put",
	"tier_up", "gc_pause", "safepoint_wait",
	"hazard.reclaim", "pool.drain", "rir.lower",
	"snapshot", "fork", "hostcall",
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return "span(?)"
}

// SpanRef names a span for parent linkage. The zero value means "no
// parent" (a root span). Refs are plain values, safe to copy across
// goroutines and store in configs.
type SpanRef struct{ ID int64 }

// Valid reports whether the ref names a real span.
func (r SpanRef) Valid() bool { return r.ID != 0 }

// Span is one in-flight span. The zero value is an inert no-op (End
// does nothing), which is what StartSpan returns when tracing is
// disabled — callers never branch on the tracing state themselves.
type Span struct {
	sc   *Scope
	id   int64
	kind SpanKind
}

// Ref returns the span's ref for parenting children (zero for a
// no-op span).
func (s Span) Ref() SpanRef { return SpanRef{ID: s.id} }

// EnableTracing turns span recording on or off (default off).
// Metrics and plain events are unaffected. Safe to call
// concurrently with emission; spans straddling the transition may
// record only one endpoint, which trace consumers count as
// incomplete rather than failing.
func (r *Registry) EnableTracing(on bool) {
	if r != nil {
		r.tracing.Store(on)
	}
}

// TracingEnabled reports whether spans are being recorded.
func (r *Registry) TracingEnabled() bool { return r != nil && r.tracing.Load() }

// TracingEnabled reports whether spans emitted through this scope
// would be recorded: callers that must pay measurement cost *before*
// a span can exist (retroactive waits need a clock read up front)
// gate on this instead of measuring unconditionally. False for a nil
// scope.
func (s *Scope) TracingEnabled() bool { return s != nil && s.reg.TracingEnabled() }

// StartSpan begins a span of the given kind under parent (zero ref =
// root) and records its begin event. Returns the inert zero Span when
// the scope is nil, the registry has no ring, or tracing is disabled
// — the documented zero-cost path.
func (s *Scope) StartSpan(kind SpanKind, parent SpanRef) Span {
	if s == nil {
		return Span{}
	}
	r := s.reg
	if r.ring == nil || !r.tracing.Load() {
		return Span{}
	}
	id := r.spanIDs.Add(1)
	r.ring.push(Event{
		TimeNs: r.now(), Scope: s.id, Kind: EvSpanBegin,
		A: id<<8 | int64(kind), B: parent.ID,
	})
	return Span{sc: s, id: id, kind: kind}
}

// End records the span's end event. No-op on the zero Span. End at
// most once; a second End would record a duplicate end event.
func (s Span) End() {
	if s.sc == nil {
		return
	}
	r := s.sc.reg
	r.ring.push(Event{
		TimeNs: r.now(), Scope: s.sc.id, Kind: EvSpanEnd,
		A: s.id<<8 | int64(s.kind),
	})
}

// EndedSpan records a completed span that ended now and lasted durNs,
// backdating the begin event. This is the shape lock-wait attribution
// needs: the wait duration is only known at acquisition, and emitting
// a begin event before blocking would put ring traffic on the
// uncontended fast path.
func (s *Scope) EndedSpan(kind SpanKind, parent SpanRef, durNs int64) {
	if s == nil {
		return
	}
	r := s.reg
	if r.ring == nil || !r.tracing.Load() {
		return
	}
	if durNs < 0 {
		durNs = 0
	}
	id := r.spanIDs.Add(1)
	end := r.now()
	a := id<<8 | int64(kind)
	r.ring.push(Event{TimeNs: end - durNs, Scope: s.id, Kind: EvSpanBegin, A: a, B: parent.ID})
	r.ring.push(Event{TimeNs: end, Scope: s.id, Kind: EvSpanEnd, A: a})
}

// SpanEventID extracts the span ID from a span event's A payload.
func SpanEventID(a int64) int64 { return a >> 8 }

// SpanEventKind extracts the span kind from a span event's A payload.
func SpanEventKind(a int64) SpanKind { return SpanKind(a & 0xff) }
