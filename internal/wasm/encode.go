package wasm

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Encode serializes a Module into the WebAssembly binary format. The
// output round-trips through Decode.
func Encode(m *Module) ([]byte, error) {
	out := make([]byte, 0, 4096)
	out = append(out, Magic...)
	out = append(out, Version...)

	appendSection := func(id byte, body []byte) {
		if len(body) == 0 {
			return
		}
		out = append(out, id)
		out = AppendUleb128(out, uint64(len(body)))
		out = append(out, body...)
	}

	// Section 1: types.
	if len(m.Types) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Types)))
		for _, t := range m.Types {
			b = append(b, 0x60)
			b = AppendUleb128(b, uint64(len(t.Params)))
			for _, p := range t.Params {
				b = append(b, byte(p))
			}
			b = AppendUleb128(b, uint64(len(t.Results)))
			for _, r := range t.Results {
				b = append(b, byte(r))
			}
		}
		appendSection(1, b)
	}

	// Section 2: imports.
	if len(m.Imports) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Imports)))
		for _, im := range m.Imports {
			b = appendName(b, im.Module)
			b = appendName(b, im.Name)
			b = append(b, byte(im.Kind))
			switch im.Kind {
			case ExternFunc:
				b = AppendUleb128(b, uint64(im.Func))
			case ExternTable:
				b = append(b, byte(Funcref))
				b = appendLimits(b, im.Table.Limits)
			case ExternMemory:
				b = appendLimits(b, im.Memory.Limits)
			case ExternGlobal:
				b = append(b, byte(im.Global.Type))
				b = appendBool(b, im.Global.Mutable)
			default:
				return nil, fmt.Errorf("wasm: encode: unknown import kind %v", im.Kind)
			}
		}
		appendSection(2, b)
	}

	// Section 3: function declarations.
	if len(m.Funcs) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Funcs)))
		for _, ti := range m.Funcs {
			b = AppendUleb128(b, uint64(ti))
		}
		appendSection(3, b)
	}

	// Section 4: tables.
	if len(m.Tables) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Tables)))
		for _, t := range m.Tables {
			b = append(b, byte(Funcref))
			b = appendLimits(b, t.Limits)
		}
		appendSection(4, b)
	}

	// Section 5: memories.
	if len(m.Mems) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Mems)))
		for _, mm := range m.Mems {
			b = appendLimits(b, mm.Limits)
		}
		appendSection(5, b)
	}

	// Section 6: globals.
	if len(m.Globals) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			b = append(b, byte(g.Type.Type))
			b = appendBool(b, g.Type.Mutable)
			var err error
			b, err = appendConstExpr(b, g.Init)
			if err != nil {
				return nil, err
			}
		}
		appendSection(6, b)
	}

	// Section 7: exports.
	if len(m.Exports) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendName(b, e.Name)
			b = append(b, byte(e.Kind))
			b = AppendUleb128(b, uint64(e.Index))
		}
		appendSection(7, b)
	}

	// Section 8: start.
	if m.Start != nil {
		var b []byte
		b = AppendUleb128(b, uint64(*m.Start))
		appendSection(8, b)
	}

	// Section 9: element segments.
	if len(m.Elems) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Elems)))
		for _, e := range m.Elems {
			b = AppendUleb128(b, uint64(e.Table))
			var err error
			b, err = appendConstExpr(b, e.Offset)
			if err != nil {
				return nil, err
			}
			b = AppendUleb128(b, uint64(len(e.Funcs)))
			for _, fi := range e.Funcs {
				b = AppendUleb128(b, uint64(fi))
			}
		}
		appendSection(9, b)
	}

	// Section 10: code.
	if len(m.Code) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Code)))
		for i, c := range m.Code {
			body, err := encodeBody(c)
			if err != nil {
				return nil, fmt.Errorf("wasm: encode function %d: %w", i, err)
			}
			b = AppendUleb128(b, uint64(len(body)))
			b = append(b, body...)
		}
		appendSection(10, b)
	}

	// Section 11: data segments.
	if len(m.Data) > 0 {
		var b []byte
		b = AppendUleb128(b, uint64(len(m.Data)))
		for _, ds := range m.Data {
			b = AppendUleb128(b, uint64(ds.Memory))
			var err error
			b, err = appendConstExpr(b, ds.Offset)
			if err != nil {
				return nil, err
			}
			b = AppendUleb128(b, uint64(len(ds.Data)))
			b = append(b, ds.Data...)
		}
		appendSection(11, b)
	}

	// Custom "name" section with function names, if any.
	if len(m.FuncNames) > 0 {
		var sub []byte
		sub = AppendUleb128(sub, uint64(len(m.FuncNames)))
		idxs := make([]uint32, 0, len(m.FuncNames))
		for idx := range m.FuncNames {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		for _, idx := range idxs {
			sub = AppendUleb128(sub, uint64(idx))
			sub = appendName(sub, m.FuncNames[idx])
		}
		var b []byte
		b = appendName(b, "name")
		b = append(b, 1) // function names subsection
		b = AppendUleb128(b, uint64(len(sub)))
		b = append(b, sub...)
		appendSection(0, b)
	}

	return out, nil
}

func appendName(b []byte, s string) []byte {
	b = AppendUleb128(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendLimits(b []byte, l Limits) []byte {
	if l.HasMax {
		b = append(b, 1)
		b = AppendUleb128(b, uint64(l.Min))
		return AppendUleb128(b, uint64(l.Max))
	}
	b = append(b, 0)
	return AppendUleb128(b, uint64(l.Min))
}

func appendConstExpr(b []byte, e ConstExpr) ([]byte, error) {
	b = append(b, byte(e.Op))
	switch e.Op {
	case OpI32Const:
		b = AppendSleb128(b, int64(int32(uint32(e.Value))))
	case OpI64Const:
		b = AppendSleb128(b, int64(e.Value))
	case OpF32Const:
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Value))
	case OpF64Const:
		b = binary.LittleEndian.AppendUint64(b, e.Value)
	case OpGlobalGet:
		b = AppendUleb128(b, e.Value)
	default:
		return nil, fmt.Errorf("wasm: encode: invalid constant opcode %s", e.Op)
	}
	return append(b, byte(OpEnd)), nil
}

func encodeBody(c Code) ([]byte, error) {
	var b []byte
	// Compress locals into (count, type) runs.
	type run struct {
		count uint32
		typ   ValueType
	}
	var runs []run
	for _, t := range c.Locals {
		if n := len(runs); n > 0 && runs[n-1].typ == t {
			runs[n-1].count++
		} else {
			runs = append(runs, run{1, t})
		}
	}
	b = AppendUleb128(b, uint64(len(runs)))
	for _, r := range runs {
		b = AppendUleb128(b, uint64(r.count))
		b = append(b, byte(r.typ))
	}
	for _, in := range c.Body {
		var err error
		b, err = AppendInstr(b, in)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// AppendInstr appends the binary encoding of a single instruction.
func AppendInstr(b []byte, in Instr) ([]byte, error) {
	b = append(b, byte(in.Op))
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		b = append(b, byte(in.A))
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
		OpGlobalGet, OpGlobalSet:
		b = AppendUleb128(b, in.A)
	case OpBrTable:
		b = AppendUleb128(b, uint64(len(in.Targets)))
		for _, t := range in.Targets {
			b = AppendUleb128(b, uint64(t))
		}
		b = AppendUleb128(b, in.A)
	case OpCallIndirect:
		b = AppendUleb128(b, in.A)
		b = append(b, 0)
	case OpMemorySize, OpMemoryGrow:
		b = append(b, 0)
	case OpI32Const:
		b = AppendSleb128(b, int64(int32(uint32(in.A))))
	case OpI64Const:
		b = AppendSleb128(b, int64(in.A))
	case OpF32Const:
		b = binary.LittleEndian.AppendUint32(b, uint32(in.A))
	case OpF64Const:
		b = binary.LittleEndian.AppendUint64(b, in.A)
	case OpPrefix:
		b = AppendUleb128(b, uint64(in.Sub))
		switch in.Sub {
		case SubMemoryCopy:
			b = append(b, 0, 0)
		case SubMemoryFill:
			b = append(b, 0)
		}
	default:
		if in.Op.IsLoad() || in.Op.IsStore() {
			b = AppendUleb128(b, in.A)
			b = AppendUleb128(b, in.B)
		}
	}
	return b, nil
}
