package wasm

import (
	"crypto/sha256"
	"encoding/hex"
)

// Hash is the stable content hash of a module: the SHA-256 of its
// binary encoding. Two modules with the same hash decode to the same
// program, so the hash is a sound content address for compiled
// artifacts (internal/modcache keys its cache on it).
type Hash [sha256.Size]byte

// String renders a short hex prefix, enough to label cache entries
// and log lines without drowning them.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// IsZero reports whether the hash is the zero value (no hash).
func (h Hash) IsZero() bool { return h == Hash{} }

// ContentHash computes the module's content hash by encoding it to
// the binary format and hashing the bytes. The encoding is
// deterministic (section order is fixed, name-section keys are
// sorted), so structurally equal modules always hash equal. Callers
// that hash the same module repeatedly should memoize: the dominant
// cost is re-encoding, which is linear in module size.
func (m *Module) ContentHash() (Hash, error) {
	data, err := Encode(m)
	if err != nil {
		return Hash{}, err
	}
	return sha256.Sum256(data), nil
}
