package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Magic and Version are the WebAssembly binary preamble values.
var (
	Magic   = []byte{0x00, 0x61, 0x73, 0x6d}
	Version = []byte{0x01, 0x00, 0x00, 0x00}
)

// ErrMalformed wraps all structural decoding failures.
var ErrMalformed = errors.New("wasm: malformed module")

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) failf(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrMalformed, d.pos, fmt.Sprintf(format, args...))
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, d.failf("need %d bytes, have %d", n, d.remaining())
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) byteVal() (byte, error) {
	if d.remaining() < 1 {
		return 0, d.failf("unexpected end")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	v, n, err := Uleb128(d.buf[d.pos:], 32)
	if err != nil {
		return 0, d.failf("%v", err)
	}
	d.pos += n
	return uint32(v), nil
}

func (d *decoder) u64() (uint64, error) {
	v, n, err := Uleb128(d.buf[d.pos:], 64)
	if err != nil {
		return 0, d.failf("%v", err)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) s32() (int32, error) {
	v, n, err := Sleb128(d.buf[d.pos:], 32)
	if err != nil {
		return 0, d.failf("%v", err)
	}
	d.pos += n
	return int32(v), nil
}

func (d *decoder) s64() (int64, error) {
	v, n, err := Sleb128(d.buf[d.pos:], 64)
	if err != nil {
		return 0, d.failf("%v", err)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) f32bits() (uint32, error) {
	b, err := d.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) f64bits() (uint64, error) {
	b, err := d.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) valueType() (ValueType, error) {
	b, err := d.byteVal()
	if err != nil {
		return 0, err
	}
	t := ValueType(b)
	if !t.Valid() {
		return 0, d.failf("invalid value type 0x%02x", b)
	}
	return t, nil
}

func (d *decoder) limits(ceil uint32) (Limits, error) {
	flag, err := d.byteVal()
	if err != nil {
		return Limits{}, err
	}
	if flag > 1 {
		return Limits{}, d.failf("invalid limits flag 0x%02x", flag)
	}
	min, err := d.u32()
	if err != nil {
		return Limits{}, err
	}
	l := Limits{Min: min}
	if flag == 1 {
		max, err := d.u32()
		if err != nil {
			return Limits{}, err
		}
		l.Max = max
		l.HasMax = true
	}
	if !l.Valid(ceil) {
		return Limits{}, d.failf("limits out of range: min=%d max=%d hasMax=%v", l.Min, l.Max, l.HasMax)
	}
	return l, nil
}

func (d *decoder) constExpr() (ConstExpr, error) {
	op, err := d.byteVal()
	if err != nil {
		return ConstExpr{}, err
	}
	var e ConstExpr
	e.Op = Opcode(op)
	switch e.Op {
	case OpI32Const:
		v, err := d.s32()
		if err != nil {
			return e, err
		}
		e.Value = uint64(uint32(v))
	case OpI64Const:
		v, err := d.s64()
		if err != nil {
			return e, err
		}
		e.Value = uint64(v)
	case OpF32Const:
		v, err := d.f32bits()
		if err != nil {
			return e, err
		}
		e.Value = uint64(v)
	case OpF64Const:
		v, err := d.f64bits()
		if err != nil {
			return e, err
		}
		e.Value = v
	case OpGlobalGet:
		v, err := d.u32()
		if err != nil {
			return e, err
		}
		e.Value = uint64(v)
	default:
		return e, d.failf("unsupported constant opcode %s", e.Op)
	}
	end, err := d.byteVal()
	if err != nil {
		return e, err
	}
	if Opcode(end) != OpEnd {
		return e, d.failf("constant expression not terminated by end")
	}
	return e, nil
}

// Decode parses a WebAssembly binary module. It performs structural
// (grammar-level) validation only; use the validate package for full
// type checking.
func Decode(data []byte) (*Module, error) {
	d := &decoder{buf: data}
	magic, err := d.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(magic) != string(Magic) {
		return nil, d.failf("bad magic")
	}
	version, err := d.bytes(4)
	if err != nil {
		return nil, err
	}
	if string(version) != string(Version) {
		return nil, d.failf("unsupported version")
	}

	m := &Module{}
	lastSection := -1
	for d.remaining() > 0 {
		id, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		size, err := d.u32()
		if err != nil {
			return nil, err
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return nil, err
		}
		if id != 0 {
			if int(id) <= lastSection {
				return nil, d.failf("section %d out of order", id)
			}
			lastSection = int(id)
		}
		sd := &decoder{buf: body}
		switch id {
		case 0: // custom
			if err := decodeCustom(sd, m); err != nil {
				return nil, err
			}
		case 1:
			err = decodeTypes(sd, m)
		case 2:
			err = decodeImports(sd, m)
		case 3:
			err = decodeFuncs(sd, m)
		case 4:
			err = decodeTables(sd, m)
		case 5:
			err = decodeMems(sd, m)
		case 6:
			err = decodeGlobals(sd, m)
		case 7:
			err = decodeExports(sd, m)
		case 8:
			v, err2 := sd.u32()
			if err2 != nil {
				return nil, err2
			}
			m.Start = &v
		case 9:
			err = decodeElems(sd, m)
		case 10:
			err = decodeCode(sd, m)
		case 11:
			err = decodeData(sd, m)
		default:
			return nil, d.failf("unknown section id %d", id)
		}
		if err != nil {
			return nil, err
		}
		if id != 0 && sd.remaining() != 0 {
			return nil, d.failf("section %d has %d trailing bytes", id, sd.remaining())
		}
	}
	if len(m.Funcs) != len(m.Code) {
		return nil, fmt.Errorf("%w: function section declares %d functions but code section has %d bodies",
			ErrMalformed, len(m.Funcs), len(m.Code))
	}
	return m, nil
}

func decodeCustom(d *decoder, m *Module) error {
	name, err := d.name()
	if err != nil {
		return nil // tolerate malformed custom sections
	}
	if name != "name" {
		return nil
	}
	// Parse the function-name subsection if present.
	for d.remaining() > 0 {
		id, err := d.byteVal()
		if err != nil {
			return nil
		}
		size, err := d.u32()
		if err != nil {
			return nil
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return nil
		}
		if id != 1 {
			continue
		}
		sd := &decoder{buf: body}
		n, err := sd.u32()
		if err != nil {
			return nil
		}
		names := make(map[uint32]string, n)
		for i := uint32(0); i < n; i++ {
			idx, err := sd.u32()
			if err != nil {
				return nil
			}
			fn, err := sd.name()
			if err != nil {
				return nil
			}
			names[idx] = fn
		}
		m.FuncNames = names
	}
	return nil
}

func decodeTypes(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	m.Types = make([]FuncType, 0, n)
	for i := uint32(0); i < n; i++ {
		form, err := d.byteVal()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return d.failf("type %d: expected func form 0x60, got 0x%02x", i, form)
		}
		np, err := d.u32()
		if err != nil {
			return err
		}
		ft := FuncType{}
		for j := uint32(0); j < np; j++ {
			t, err := d.valueType()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, t)
		}
		nr, err := d.u32()
		if err != nil {
			return err
		}
		if nr > 1 {
			return d.failf("type %d: multi-value results not supported", i)
		}
		for j := uint32(0); j < nr; j++ {
			t, err := d.valueType()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, t)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImports(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	m.Imports = make([]Import, 0, n)
	for i := uint32(0); i < n; i++ {
		mod, err := d.name()
		if err != nil {
			return err
		}
		name, err := d.name()
		if err != nil {
			return err
		}
		kind, err := d.byteVal()
		if err != nil {
			return err
		}
		im := Import{Module: mod, Name: name, Kind: ExternKind(kind)}
		switch im.Kind {
		case ExternFunc:
			ti, err := d.u32()
			if err != nil {
				return err
			}
			im.Func = ti
		case ExternTable:
			et, err := d.byteVal()
			if err != nil {
				return err
			}
			if ValueType(et) != Funcref {
				return d.failf("import %d: table element type must be funcref", i)
			}
			lim, err := d.limits(math.MaxUint32)
			if err != nil {
				return err
			}
			im.Table = TableType{Elem: Funcref, Limits: lim}
		case ExternMemory:
			lim, err := d.limits(MaxPages)
			if err != nil {
				return err
			}
			im.Memory = MemoryType{Limits: lim}
		case ExternGlobal:
			t, err := d.valueType()
			if err != nil {
				return err
			}
			mut, err := d.byteVal()
			if err != nil {
				return err
			}
			if mut > 1 {
				return d.failf("import %d: invalid mutability %d", i, mut)
			}
			im.Global = GlobalType{Type: t, Mutable: mut == 1}
		default:
			return d.failf("import %d: unknown kind 0x%02x", i, kind)
		}
		m.Imports = append(m.Imports, im)
	}
	return nil
}

func decodeFuncs(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	m.Funcs = make([]uint32, 0, n)
	for i := uint32(0); i < n; i++ {
		ti, err := d.u32()
		if err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, ti)
	}
	return nil
}

func decodeTables(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		et, err := d.byteVal()
		if err != nil {
			return err
		}
		if ValueType(et) != Funcref {
			return d.failf("table %d: element type must be funcref", i)
		}
		lim, err := d.limits(math.MaxUint32)
		if err != nil {
			return err
		}
		m.Tables = append(m.Tables, TableType{Elem: Funcref, Limits: lim})
	}
	return nil
}

func decodeMems(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		lim, err := d.limits(MaxPages)
		if err != nil {
			return err
		}
		m.Mems = append(m.Mems, MemoryType{Limits: lim})
	}
	return nil
}

func decodeGlobals(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := d.valueType()
		if err != nil {
			return err
		}
		mut, err := d.byteVal()
		if err != nil {
			return err
		}
		if mut > 1 {
			return d.failf("global %d: invalid mutability %d", i, mut)
		}
		init, err := d.constExpr()
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, Global{
			Type: GlobalType{Type: t, Mutable: mut == 1},
			Init: init,
		})
	}
	return nil
}

func decodeExports(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	seen := make(map[string]bool, n)
	for i := uint32(0); i < n; i++ {
		name, err := d.name()
		if err != nil {
			return err
		}
		if seen[name] {
			return d.failf("duplicate export %q", name)
		}
		seen[name] = true
		kind, err := d.byteVal()
		if err != nil {
			return err
		}
		idx, err := d.u32()
		if err != nil {
			return err
		}
		if ExternKind(kind) > ExternGlobal {
			return d.failf("export %q: unknown kind 0x%02x", name, kind)
		}
		m.Exports = append(m.Exports, Export{Name: name, Kind: ExternKind(kind), Index: idx})
	}
	return nil
}

func decodeElems(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		tbl, err := d.u32()
		if err != nil {
			return err
		}
		off, err := d.constExpr()
		if err != nil {
			return err
		}
		cnt, err := d.u32()
		if err != nil {
			return err
		}
		funcs := make([]uint32, 0, cnt)
		for j := uint32(0); j < cnt; j++ {
			fi, err := d.u32()
			if err != nil {
				return err
			}
			funcs = append(funcs, fi)
		}
		m.Elems = append(m.Elems, ElemSegment{Table: tbl, Offset: off, Funcs: funcs})
	}
	return nil
}

func decodeData(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		mem, err := d.u32()
		if err != nil {
			return err
		}
		off, err := d.constExpr()
		if err != nil {
			return err
		}
		sz, err := d.u32()
		if err != nil {
			return err
		}
		data, err := d.bytes(int(sz))
		if err != nil {
			return err
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		m.Data = append(m.Data, DataSegment{Memory: mem, Offset: off, Data: cp})
	}
	return nil
}

func decodeCode(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	m.Code = make([]Code, 0, n)
	for i := uint32(0); i < n; i++ {
		size, err := d.u32()
		if err != nil {
			return err
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return err
		}
		bd := &decoder{buf: body}
		nd, err := bd.u32()
		if err != nil {
			return err
		}
		var code Code
		total := 0
		for j := uint32(0); j < nd; j++ {
			cnt, err := bd.u32()
			if err != nil {
				return err
			}
			t, err := bd.valueType()
			if err != nil {
				return err
			}
			total += int(cnt)
			if total > 1<<20 {
				return bd.failf("function %d declares too many locals", i)
			}
			for k := uint32(0); k < cnt; k++ {
				code.Locals = append(code.Locals, t)
			}
		}
		instrs, err := decodeExpr(bd)
		if err != nil {
			return fmt.Errorf("function %d: %w", i, err)
		}
		if bd.remaining() != 0 {
			return bd.failf("function %d: trailing bytes after body", i)
		}
		code.Body = instrs
		m.Code = append(m.Code, code)
	}
	return nil
}

// decodeExpr decodes an instruction sequence up to and including the
// matching final end.
func decodeExpr(d *decoder) ([]Instr, error) {
	var out []Instr
	depth := 0
	for {
		b, err := d.byteVal()
		if err != nil {
			return nil, err
		}
		op := Opcode(b)
		in := Instr{Op: op}
		switch op {
		case OpUnreachable, OpNop, OpReturn, OpDrop, OpSelect,
			OpI32Eqz, OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU,
			OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU,
			OpI64Eqz, OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU,
			OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU,
			OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge,
			OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge,
			OpI32Clz, OpI32Ctz, OpI32Popcnt, OpI32Add, OpI32Sub, OpI32Mul,
			OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU, OpI32And, OpI32Or,
			OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU, OpI32Rotl, OpI32Rotr,
			OpI64Clz, OpI64Ctz, OpI64Popcnt, OpI64Add, OpI64Sub, OpI64Mul,
			OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU, OpI64And, OpI64Or,
			OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU, OpI64Rotl, OpI64Rotr,
			OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest,
			OpF32Sqrt, OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min,
			OpF32Max, OpF32Copysign,
			OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest,
			OpF64Sqrt, OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min,
			OpF64Max, OpF64Copysign,
			OpI32WrapI64, OpI32TruncF32S, OpI32TruncF32U, OpI32TruncF64S,
			OpI32TruncF64U, OpI64ExtendI32S, OpI64ExtendI32U, OpI64TruncF32S,
			OpI64TruncF32U, OpI64TruncF64S, OpI64TruncF64U, OpF32ConvertI32S,
			OpF32ConvertI32U, OpF32ConvertI64S, OpF32ConvertI64U, OpF32DemoteF64,
			OpF64ConvertI32S, OpF64ConvertI32U, OpF64ConvertI64S, OpF64ConvertI64U,
			OpF64PromoteF32, OpI32ReinterpretF32, OpI64ReinterpretF64,
			OpF32ReinterpretI32, OpF64ReinterpretI64,
			OpI32Extend8S, OpI32Extend16S, OpI64Extend8S, OpI64Extend16S, OpI64Extend32S:
			// no immediates
		case OpBlock, OpLoop, OpIf:
			bt, err := d.byteVal()
			if err != nil {
				return nil, err
			}
			if bt != BlockEmpty && !ValueType(bt).Valid() {
				return nil, d.failf("invalid block type 0x%02x", bt)
			}
			in.A = uint64(bt)
			depth++
		case OpElse:
			// structure checked by the validator
		case OpEnd:
			if depth == 0 {
				out = append(out, in)
				return out, nil
			}
			depth--
		case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
			OpGlobalGet, OpGlobalSet:
			v, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
		case OpBrTable:
			cnt, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(cnt) > d.remaining() {
				return nil, d.failf("br_table target count %d too large", cnt)
			}
			targets := make([]uint32, 0, cnt)
			for j := uint32(0); j < cnt; j++ {
				t, err := d.u32()
				if err != nil {
					return nil, err
				}
				targets = append(targets, t)
			}
			def, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.Targets = targets
			in.A = uint64(def)
		case OpCallIndirect:
			ti, err := d.u32()
			if err != nil {
				return nil, err
			}
			tbl, err := d.byteVal()
			if err != nil {
				return nil, err
			}
			if tbl != 0 {
				return nil, d.failf("call_indirect reserved byte must be 0")
			}
			in.A = uint64(ti)
		case OpMemorySize, OpMemoryGrow:
			mi, err := d.byteVal()
			if err != nil {
				return nil, err
			}
			if mi != 0 {
				return nil, d.failf("memory index must be 0")
			}
		case OpI32Const:
			v, err := d.s32()
			if err != nil {
				return nil, err
			}
			in.A = uint64(uint32(v))
		case OpI64Const:
			v, err := d.s64()
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
		case OpF32Const:
			v, err := d.f32bits()
			if err != nil {
				return nil, err
			}
			in.A = uint64(v)
		case OpF64Const:
			v, err := d.f64bits()
			if err != nil {
				return nil, err
			}
			in.A = v
		case OpPrefix:
			sub, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.Sub = SubOpcode(sub)
			switch in.Sub {
			case SubI32TruncSatF32S, SubI32TruncSatF32U, SubI32TruncSatF64S,
				SubI32TruncSatF64U, SubI64TruncSatF32S, SubI64TruncSatF32U,
				SubI64TruncSatF64S, SubI64TruncSatF64U:
				// no immediates
			case SubMemoryCopy:
				a, err := d.byteVal()
				if err != nil {
					return nil, err
				}
				b, err := d.byteVal()
				if err != nil {
					return nil, err
				}
				if a != 0 || b != 0 {
					return nil, d.failf("memory.copy indices must be 0")
				}
			case SubMemoryFill:
				a, err := d.byteVal()
				if err != nil {
					return nil, err
				}
				if a != 0 {
					return nil, d.failf("memory.fill index must be 0")
				}
			default:
				return nil, d.failf("unsupported prefixed opcode %d", sub)
			}
		default:
			if op.IsLoad() || op.IsStore() {
				align, err := d.u32()
				if err != nil {
					return nil, err
				}
				offset, err := d.u32()
				if err != nil {
					return nil, err
				}
				in.A = uint64(align)
				in.B = uint64(offset)
			} else {
				return nil, d.failf("unknown opcode 0x%02x", b)
			}
		}
		out = append(out, in)
	}
}
