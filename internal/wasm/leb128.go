// Package wasm models the WebAssembly binary format: the module
// structure, instruction set, and the LEB128-based binary encoding
// and decoding used by every other package in this repository.
//
// The package implements the WebAssembly 1.0 (MVP) core specification
// plus the sign-extension operators, saturating truncations and the
// memory.copy/memory.fill bulk-memory instructions, which is the
// subset exercised by the paper's workloads.
package wasm

import (
	"errors"
	"fmt"
)

// ErrLEB128 is returned when a variable-length integer is malformed:
// truncated, over-long, or carrying non-canonical high bits.
var ErrLEB128 = errors.New("wasm: malformed LEB128 integer")

// AppendUleb128 appends the unsigned LEB128 encoding of v to dst.
func AppendUleb128(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
			continue
		}
		return append(dst, b)
	}
}

// AppendSleb128 appends the signed LEB128 encoding of v to dst.
func AppendSleb128(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// Uleb128 decodes an unsigned LEB128 integer of at most bits bits
// from p, returning the value and the number of bytes consumed.
func Uleb128(p []byte, bits int) (uint64, int, error) {
	var v uint64
	var shift uint
	maxBytes := (bits + 6) / 7
	for i := 0; i < len(p); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("%w: too long for u%d", ErrLEB128, bits)
		}
		b := p[i]
		if i == maxBytes-1 {
			// The final byte may only use the bits that remain.
			rem := uint(bits) - shift
			if b&0x80 != 0 || (rem < 7 && b>>rem != 0) {
				return 0, 0, fmt.Errorf("%w: overflows u%d", ErrLEB128, bits)
			}
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, fmt.Errorf("%w: truncated", ErrLEB128)
}

// Sleb128 decodes a signed LEB128 integer of at most bits bits from
// p, returning the value and the number of bytes consumed.
func Sleb128(p []byte, bits int) (int64, int, error) {
	var v int64
	var shift uint
	maxBytes := (bits + 6) / 7
	for i := 0; i < len(p); i++ {
		if i >= maxBytes {
			return 0, 0, fmt.Errorf("%w: too long for s%d", ErrLEB128, bits)
		}
		b := p[i]
		if i == maxBytes-1 {
			if b&0x80 != 0 {
				return 0, 0, fmt.Errorf("%w: overflows s%d", ErrLEB128, bits)
			}
			// The bits beyond the value width must be a proper sign
			// extension of the value's top bit.
			rem := uint(bits) - shift
			if rem < 7 {
				signBits := byte(0x7f) &^ (1<<rem - 1)
				top := b & signBits
				negative := b&(1<<(rem-1)) != 0
				if (negative && top != signBits) || (!negative && top != 0) {
					return 0, 0, fmt.Errorf("%w: non-canonical s%d", ErrLEB128, bits)
				}
			}
		}
		v |= int64(b&0x7f) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: truncated", ErrLEB128)
}
