package wasm_test

import (
	"bytes"
	"testing"

	"leapsandbounds/internal/wasm"
	"leapsandbounds/internal/workloads"
)

// FuzzDecode feeds arbitrary bytes to the binary decoder. Two
// properties must hold: Decode never panics (the fuzzer fails on any
// panic automatically), and any module it accepts must round-trip —
// Encode succeeds, and Decode(Encode(m)) re-encodes to identical
// bytes, i.e. encode∘decode is a fixed point on the decoder's image.
// The seed corpus is every workload module plus the malformed-input
// shapes the unit tests pin, so coverage guidance starts from inputs
// that reach deep into section parsing.
func FuzzDecode(f *testing.F) {
	for _, spec := range workloads.All() {
		m, _ := spec.Build(workloads.Test)
		if bin, err := wasm.Encode(m); err == nil {
			f.Add(bin)
			// A truncated and a byte-flipped variant nudge the fuzzer
			// toward the error paths immediately.
			f.Add(bin[:len(bin)/2])
			c := append([]byte(nil), bin...)
			c[len(c)/3] ^= 0xff
			f.Add(c)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wasm.Decode(data)
		if err != nil {
			return
		}
		bin, err := wasm.Encode(m)
		if err != nil {
			t.Fatalf("decoded module failed to encode: %v", err)
		}
		m2, err := wasm.Decode(bin)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		bin2, err := wasm.Encode(m2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(bin, bin2) {
			t.Fatal("encode->decode->encode is not a fixed point")
		}
	})
}
