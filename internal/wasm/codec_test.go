package wasm_test

import (
	"bytes"
	"reflect"
	"testing"

	"leapsandbounds/internal/wasm"
	"leapsandbounds/internal/workloads"
)

// TestRoundtripWorkloads encodes every workload module and decodes
// it back, requiring structural equality — the broadest codec test
// available, since the workloads exercise most of the instruction
// set.
func TestRoundtripWorkloads(t *testing.T) {
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			m, _ := spec.Build(workloads.Test)
			bin, err := wasm.Encode(m)
			if err != nil {
				t.Fatal(err)
			}
			m2, err := wasm.Decode(bin)
			if err != nil {
				t.Fatal(err)
			}
			bin2, err := wasm.Encode(m2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bin, bin2) {
				t.Error("encode->decode->encode is not a fixed point")
			}
			if !reflect.DeepEqual(normalize(m), normalize(m2)) {
				t.Error("decoded module differs structurally")
			}
		})
	}
}

// normalize clears fields the codec legitimately canonicalizes.
func normalize(m *wasm.Module) *wasm.Module {
	cp := *m
	return &cp
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		m, _ := workloadModule()
		bin, err := wasm.Encode(m)
		if err != nil {
			panic(err)
		}
		return bin
	}()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte {
			c := clone(b)
			c[0] = 'X'
			return c
		}},
		{"bad version", func(b []byte) []byte {
			c := clone(b)
			c[4] = 9
			return c
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"trailing garbage section", func(b []byte) []byte {
			return append(clone(b), 0x63, 0x05, 1, 2, 3)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := wasm.Decode(c.mutate(valid)); err == nil {
				t.Error("expected decode error")
			}
		})
	}
}

// TestDecodeTruncationSweep truncates a real module at every length.
// Decode must never panic; prefixes that end exactly on a section
// boundary are legitimately valid (smaller) modules, every other
// prefix must fail. The code section is where function-count /
// body-count consistency is enforced, so prefixes cutting it off
// must error.
func TestDecodeTruncationSweep(t *testing.T) {
	m, _ := workloadModule()
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	for n := 0; n < len(bin); n++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %d-byte prefix: %v", n, r)
				}
			}()
			if _, err := wasm.Decode(bin[:n]); err == nil {
				valid++
			}
		}()
	}
	// Only the empty module (magic+version) and at most a handful of
	// early boundaries can be valid; a module with functions cannot
	// be valid without its code section.
	if valid > 4 {
		t.Errorf("%d truncated prefixes decoded successfully", valid)
	}
}

// TestDecodeByteFlips flips each byte of a module; decoding must
// never panic (errors are fine, and some flips remain valid).
func TestDecodeByteFlips(t *testing.T) {
	m, _ := workloadModule()
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 8; i < len(bin); i++ { // keep the preamble
		c := clone(bin)
		c[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked with byte %d flipped: %v", i, r)
				}
			}()
			_, _ = wasm.Decode(c)
		}()
	}
}

func workloadModule() (*wasm.Module, func() uint64) {
	spec, err := workloads.ByName("gemm")
	if err != nil {
		panic(err)
	}
	return spec.Build(workloads.Test)
}

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

func TestSectionOrderEnforced(t *testing.T) {
	m, _ := workloadModule()
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Append a duplicate (out-of-order) type section at the end.
	dup := append(clone(bin), 0x01, 0x01, 0x00)
	if _, err := wasm.Decode(dup); err == nil {
		t.Error("out-of-order section accepted")
	}
}

func TestFuncNamesSurvive(t *testing.T) {
	m, _ := workloadModule()
	bin, err := wasm.Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := wasm.Decode(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.FuncNames) == 0 {
		t.Fatal("name section lost")
	}
	idx, ok := m2.ExportedFunc(workloads.Entry)
	if !ok {
		t.Fatal("entry export lost")
	}
	if m2.FuncNames[idx] != workloads.Entry {
		t.Errorf("entry name %q", m2.FuncNames[idx])
	}
}
