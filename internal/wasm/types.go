package wasm

import (
	"fmt"
	"strings"
)

// ValueType is one of WebAssembly's four primitive value types.
type ValueType byte

// Value types as encoded in the binary format.
const (
	I32 ValueType = 0x7f
	I64 ValueType = 0x7e
	F32 ValueType = 0x7d
	F64 ValueType = 0x7c
	// Funcref is the only reference type in the MVP; it may appear
	// exclusively as a table element type.
	Funcref ValueType = 0x70
)

func (t ValueType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case Funcref:
		return "funcref"
	default:
		return fmt.Sprintf("valuetype(0x%02x)", byte(t))
	}
}

// Valid reports whether t is a numeric value type.
func (t ValueType) Valid() bool {
	return t == I32 || t == I64 || t == F32 || t == F64
}

// FuncType is a function signature. The MVP allows at most one result.
type FuncType struct {
	Params  []ValueType
	Results []ValueType
}

func (f FuncType) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString(") -> (")
	for i, r := range f.Results {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Equal reports whether two function types are structurally equal.
func (f FuncType) Equal(o FuncType) bool {
	if len(f.Params) != len(o.Params) || len(f.Results) != len(o.Results) {
		return false
	}
	for i := range f.Params {
		if f.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range f.Results {
		if f.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// Limits bound the size of a memory or table. Max is in effect only
// when HasMax is set.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// Valid reports whether the limits are well-formed against a range
// ceiling (e.g. 65536 pages for memories).
func (l Limits) Valid(ceil uint32) bool {
	if l.Min > ceil {
		return false
	}
	if l.HasMax && (l.Max > ceil || l.Max < l.Min) {
		return false
	}
	return true
}

// MemoryType describes a linear memory. Limits are in 64 KiB pages.
type MemoryType struct {
	Limits Limits
}

// TableType describes a function table.
type TableType struct {
	Elem   ValueType // always Funcref in the MVP
	Limits Limits
}

// GlobalType describes a global variable.
type GlobalType struct {
	Type    ValueType
	Mutable bool
}

// PageSize is the WebAssembly linear memory page size in bytes.
const PageSize = 64 * 1024

// MaxPages is the number of pages addressable with a 32-bit index.
const MaxPages = 65536

// ExternKind discriminates import/export descriptors.
type ExternKind byte

// Extern kinds as encoded in the binary format.
const (
	ExternFunc   ExternKind = 0x00
	ExternTable  ExternKind = 0x01
	ExternMemory ExternKind = 0x02
	ExternGlobal ExternKind = 0x03
)

func (k ExternKind) String() string {
	switch k {
	case ExternFunc:
		return "func"
	case ExternTable:
		return "table"
	case ExternMemory:
		return "memory"
	case ExternGlobal:
		return "global"
	default:
		return fmt.Sprintf("externkind(0x%02x)", byte(k))
	}
}
