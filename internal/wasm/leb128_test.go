package wasm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUleb128Roundtrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 256, 16383, 16384, math.MaxUint32, math.MaxUint64}
	for _, v := range cases {
		enc := AppendUleb128(nil, v)
		got, n, err := Uleb128(enc, 64)
		if err != nil {
			t.Fatalf("Uleb128(%d): %v", v, err)
		}
		if got != v || n != len(enc) {
			t.Errorf("Uleb128 roundtrip %d: got %d, consumed %d of %d", v, got, n, len(enc))
		}
	}
}

func TestUleb128RoundtripQuick(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendUleb128(nil, v)
		got, n, err := Uleb128(enc, 64)
		return err == nil && got == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUleb128RoundtripQuick32(t *testing.T) {
	f := func(v uint32) bool {
		enc := AppendUleb128(nil, uint64(v))
		got, n, err := Uleb128(enc, 32)
		return err == nil && uint32(got) == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSleb128RoundtripQuick(t *testing.T) {
	f := func(v int64) bool {
		enc := AppendSleb128(nil, v)
		got, n, err := Sleb128(enc, 64)
		return err == nil && got == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSleb128RoundtripQuick32(t *testing.T) {
	f := func(v int32) bool {
		enc := AppendSleb128(nil, int64(v))
		got, n, err := Sleb128(enc, 32)
		return err == nil && int32(got) == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSleb128Boundaries(t *testing.T) {
	cases := []int64{0, -1, 1, 63, 64, -64, -65, math.MaxInt32, math.MinInt32, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		enc := AppendSleb128(nil, v)
		got, n, err := Sleb128(enc, 64)
		if err != nil {
			t.Fatalf("Sleb128(%d): %v", v, err)
		}
		if got != v || n != len(enc) {
			t.Errorf("Sleb128 roundtrip %d: got %d, consumed %d of %d", v, got, n, len(enc))
		}
	}
}

func TestUleb128Truncated(t *testing.T) {
	if _, _, err := Uleb128([]byte{0x80}, 32); err == nil {
		t.Error("expected error for truncated input")
	}
	if _, _, err := Uleb128(nil, 32); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestUleb128Overlong(t *testing.T) {
	// 6 continuation bytes exceed the 5-byte maximum for u32.
	if _, _, err := Uleb128([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, 32); err == nil {
		t.Error("expected error for overlong u32")
	}
	// A 5th byte with any bit above bit 3 set overflows u32.
	if _, _, err := Uleb128([]byte{0xff, 0xff, 0xff, 0xff, 0x10}, 32); err == nil {
		t.Error("expected error for u32 overflow")
	}
	// 0x0f in the 5th byte is exactly the top 4 bits: legal.
	v, _, err := Uleb128([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}, 32)
	if err != nil || uint32(v) != math.MaxUint32 {
		t.Errorf("max u32: got %d, %v", v, err)
	}
}

func TestSleb128Truncated(t *testing.T) {
	if _, _, err := Sleb128([]byte{0x80}, 32); err == nil {
		t.Error("expected error for truncated input")
	}
}

func TestUleb128ConsumedPrefix(t *testing.T) {
	// Decoding should stop at the terminator and leave trailing bytes.
	enc := AppendUleb128(nil, 300)
	enc = append(enc, 0xde, 0xad)
	v, n, err := Uleb128(enc, 32)
	if err != nil || v != 300 || n != len(enc)-2 {
		t.Errorf("got v=%d n=%d err=%v", v, n, err)
	}
}
