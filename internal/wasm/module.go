package wasm

import "fmt"

// Instr is one decoded instruction. Immediates are stored in a fixed
// layout so the struct stays small and allocation-free to copy:
//
//	block/loop/if   BlockType in A (int64 of the encoded byte / type index)
//	br/br_if        label depth in A
//	br_table        Targets + default in A
//	call            function index in A
//	call_indirect   type index in A
//	local/global    index in A
//	memory access   align in A, offset in B
//	const           raw bits in A (i32/f32 in low 32 bits)
//	prefix          SubOpcode in Sub, extra operands in A/B
type Instr struct {
	Op      Opcode
	Sub     SubOpcode
	A       uint64
	B       uint64
	Targets []uint32 // br_table only; default target in A
}

// BlockEmpty is the BlockType value for an empty (no-result) block.
const BlockEmpty = 0x40

// BlockType returns the decoded block type for block/loop/if
// instructions: BlockEmpty, or a ValueType byte.
func (i Instr) BlockType() byte { return byte(i.A) }

func (i Instr) String() string {
	switch i.Op {
	case OpPrefix:
		return i.Sub.String()
	case OpI32Const:
		return fmt.Sprintf("i32.const %d", int32(uint32(i.A)))
	case OpI64Const:
		return fmt.Sprintf("i64.const %d", int64(i.A))
	case OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet, OpBr, OpBrIf:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	default:
		if i.Op.IsLoad() || i.Op.IsStore() {
			return fmt.Sprintf("%s align=%d offset=%d", i.Op, i.A, i.B)
		}
		return i.Op.String()
	}
}

// Import is a single import entry.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind
	// One of the following is set depending on Kind.
	Func   uint32 // type index
	Table  TableType
	Memory MemoryType
	Global GlobalType
}

// Export is a single export entry.
type Export struct {
	Name  string
	Kind  ExternKind
	Index uint32
}

// Global is a module-defined global with its constant initializer.
type Global struct {
	Type GlobalType
	Init ConstExpr
}

// ConstExpr is a constant initializer expression: a single const
// instruction or a global.get of an imported global.
type ConstExpr struct {
	Op    Opcode // OpI32Const, OpI64Const, OpF32Const, OpF64Const, OpGlobalGet
	Value uint64 // raw bits or global index
}

// ElemSegment initializes a range of a table with function indices.
type ElemSegment struct {
	Table  uint32
	Offset ConstExpr
	Funcs  []uint32
}

// DataSegment initializes a range of linear memory.
type DataSegment struct {
	Memory uint32
	Offset ConstExpr
	Data   []byte
}

// Code is one function body: its extra local declarations and
// decoded instruction sequence (terminated by an End instruction).
type Code struct {
	Locals []ValueType // expanded local declarations (excluding params)
	Body   []Instr
}

// Module is a fully decoded WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	// Funcs holds the type index for each module-defined function;
	// Code holds the matching bodies (same length, same order).
	Funcs   []uint32
	Tables  []TableType
	Mems    []MemoryType
	Globals []Global
	Exports []Export
	Start   *uint32
	Elems   []ElemSegment
	Code    []Code
	Data    []DataSegment

	// Names from the custom name section, if present (index keyed by
	// function space index).
	FuncNames map[uint32]string
}

// NumImportedFuncs returns how many functions are imported; module-
// defined functions are indexed after them in the function space.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternFunc {
			n++
		}
	}
	return n
}

// NumImportedGlobals returns the number of imported globals.
func (m *Module) NumImportedGlobals() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternGlobal {
			n++
		}
	}
	return n
}

// NumImportedMems returns the number of imported memories.
func (m *Module) NumImportedMems() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternMemory {
			n++
		}
	}
	return n
}

// NumImportedTables returns the number of imported tables.
func (m *Module) NumImportedTables() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternTable {
			n++
		}
	}
	return n
}

// FuncTypeAt returns the signature of the function with the given
// function-space index (imports first, then module-defined).
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	i := uint32(0)
	for _, im := range m.Imports {
		if im.Kind != ExternFunc {
			continue
		}
		if i == idx {
			if int(im.Func) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import %q.%q has bad type index %d", im.Module, im.Name, im.Func)
			}
			return m.Types[im.Func], nil
		}
		i++
	}
	local := idx - i
	if int(local) >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Funcs[local]
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has bad type index %d", idx, ti)
	}
	return m.Types[ti], nil
}

// ExportedFunc returns the function-space index of the named exported
// function.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Name == name && e.Kind == ExternFunc {
			return e.Index, true
		}
	}
	return 0, false
}

// MemoryLimits returns the limits of the module's memory (imported or
// defined), and whether the module has a memory at all.
func (m *Module) MemoryLimits() (Limits, bool) {
	for _, im := range m.Imports {
		if im.Kind == ExternMemory {
			return im.Memory.Limits, true
		}
	}
	if len(m.Mems) > 0 {
		return m.Mems[0].Limits, true
	}
	return Limits{}, false
}
