// Package validate implements WebAssembly module validation: the
// type-checking algorithm from the core specification (appendix
// "Validation Algorithm"), applied to every function body, plus
// module-level checks on imports, exports, segments and limits.
package validate

import (
	"errors"
	"fmt"
	"math/bits"

	"leapsandbounds/internal/wasm"
)

// ErrInvalid wraps all validation failures.
var ErrInvalid = errors.New("validate: invalid module")

// unknown is the bottom value type used for unreachable operand slots.
const unknown wasm.ValueType = 0

// Module validates m in full. It returns nil when the module is valid.
func Module(m *wasm.Module) error {
	v := &validator{m: m}
	return v.run()
}

type validator struct {
	m *wasm.Module

	// Flattened index spaces (imports first).
	funcs   []wasm.FuncType
	globals []wasm.GlobalType
	numMems int
	numTabs int
	// Number of imported globals; only these may appear in constant
	// expressions.
	importedGlobals int
}

func (v *validator) failf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

func (v *validator) run() error {
	m := v.m

	// Build index spaces.
	for i, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternFunc:
			if int(im.Func) >= len(m.Types) {
				return v.failf("import %d: type index %d out of range", i, im.Func)
			}
			v.funcs = append(v.funcs, m.Types[im.Func])
		case wasm.ExternGlobal:
			v.globals = append(v.globals, im.Global)
			v.importedGlobals++
		case wasm.ExternMemory:
			v.numMems++
		case wasm.ExternTable:
			v.numTabs++
		}
	}
	for i, ti := range m.Funcs {
		if int(ti) >= len(m.Types) {
			return v.failf("function %d: type index %d out of range", i, ti)
		}
		v.funcs = append(v.funcs, m.Types[ti])
	}
	for _, g := range m.Globals {
		v.globals = append(v.globals, g.Type)
	}
	v.numMems += len(m.Mems)
	v.numTabs += len(m.Tables)

	if v.numMems > 1 {
		return v.failf("at most one memory is allowed, found %d", v.numMems)
	}
	if v.numTabs > 1 {
		return v.failf("at most one table is allowed, found %d", v.numTabs)
	}

	// Global initializers.
	for i, g := range m.Globals {
		t, err := v.constExprType(g.Init)
		if err != nil {
			return v.failf("global %d: %v", i, err)
		}
		if t != g.Type.Type {
			return v.failf("global %d: initializer type %s, want %s", i, t, g.Type.Type)
		}
	}

	// Exports.
	for _, e := range m.Exports {
		switch e.Kind {
		case wasm.ExternFunc:
			if int(e.Index) >= len(v.funcs) {
				return v.failf("export %q: function index %d out of range", e.Name, e.Index)
			}
		case wasm.ExternGlobal:
			if int(e.Index) >= len(v.globals) {
				return v.failf("export %q: global index %d out of range", e.Name, e.Index)
			}
		case wasm.ExternMemory:
			if int(e.Index) >= v.numMems {
				return v.failf("export %q: memory index %d out of range", e.Name, e.Index)
			}
		case wasm.ExternTable:
			if int(e.Index) >= v.numTabs {
				return v.failf("export %q: table index %d out of range", e.Name, e.Index)
			}
		}
	}

	// Start function.
	if m.Start != nil {
		if int(*m.Start) >= len(v.funcs) {
			return v.failf("start function index %d out of range", *m.Start)
		}
		ft := v.funcs[*m.Start]
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return v.failf("start function must have type () -> (), has %s", ft)
		}
	}

	// Element segments.
	for i, e := range m.Elems {
		if int(e.Table) >= v.numTabs {
			return v.failf("element segment %d: table index %d out of range", i, e.Table)
		}
		t, err := v.constExprType(e.Offset)
		if err != nil {
			return v.failf("element segment %d: %v", i, err)
		}
		if t != wasm.I32 {
			return v.failf("element segment %d: offset type %s, want i32", i, t)
		}
		for _, fi := range e.Funcs {
			if int(fi) >= len(v.funcs) {
				return v.failf("element segment %d: function index %d out of range", i, fi)
			}
		}
	}

	// Data segments.
	for i, ds := range m.Data {
		if int(ds.Memory) >= v.numMems {
			return v.failf("data segment %d: memory index %d out of range", i, ds.Memory)
		}
		t, err := v.constExprType(ds.Offset)
		if err != nil {
			return v.failf("data segment %d: %v", i, err)
		}
		if t != wasm.I32 {
			return v.failf("data segment %d: offset type %s, want i32", i, t)
		}
	}

	// Function bodies.
	imported := m.NumImportedFuncs()
	for i := range m.Code {
		ft := v.funcs[imported+i]
		if err := v.validateBody(ft, &m.Code[i]); err != nil {
			name := fmt.Sprintf("function %d", imported+i)
			if n, ok := m.FuncNames[uint32(imported+i)]; ok {
				name = fmt.Sprintf("function %d (%s)", imported+i, n)
			}
			return v.failf("%s: %v", name, err)
		}
	}
	return nil
}

func (v *validator) constExprType(e wasm.ConstExpr) (wasm.ValueType, error) {
	switch e.Op {
	case wasm.OpI32Const:
		return wasm.I32, nil
	case wasm.OpI64Const:
		return wasm.I64, nil
	case wasm.OpF32Const:
		return wasm.F32, nil
	case wasm.OpF64Const:
		return wasm.F64, nil
	case wasm.OpGlobalGet:
		idx := int(e.Value)
		if idx >= v.importedGlobals {
			return 0, fmt.Errorf("constant global.get %d must refer to an imported global", idx)
		}
		g := v.globals[idx]
		if g.Mutable {
			return 0, fmt.Errorf("constant global.get %d refers to a mutable global", idx)
		}
		return g.Type, nil
	default:
		return 0, fmt.Errorf("invalid constant opcode %s", e.Op)
	}
}

// ctrlFrame is one entry of the control stack.
type ctrlFrame struct {
	op          wasm.Opcode // block, loop, if, or 0 for the function frame
	startTypes  []wasm.ValueType
	endTypes    []wasm.ValueType
	height      int
	unreachable bool
}

// labelTypes returns the types expected by a branch to this frame.
func (f *ctrlFrame) labelTypes() []wasm.ValueType {
	if f.op == wasm.OpLoop {
		return f.startTypes
	}
	return f.endTypes
}

type bodyChecker struct {
	v      *validator
	locals []wasm.ValueType
	ops    []wasm.ValueType
	ctrls  []ctrlFrame
}

func (c *bodyChecker) pushOp(t wasm.ValueType) { c.ops = append(c.ops, t) }

func (c *bodyChecker) popOpAny() (wasm.ValueType, error) {
	cur := &c.ctrls[len(c.ctrls)-1]
	if len(c.ops) == cur.height {
		if cur.unreachable {
			return unknown, nil
		}
		return 0, fmt.Errorf("operand stack underflow")
	}
	t := c.ops[len(c.ops)-1]
	c.ops = c.ops[:len(c.ops)-1]
	return t, nil
}

func (c *bodyChecker) popOp(want wasm.ValueType) (wasm.ValueType, error) {
	got, err := c.popOpAny()
	if err != nil {
		return 0, err
	}
	if got != want && got != unknown && want != unknown {
		return 0, fmt.Errorf("type mismatch: got %s, want %s", got, want)
	}
	return got, nil
}

func (c *bodyChecker) pushCtrl(op wasm.Opcode, in, out []wasm.ValueType) {
	c.ctrls = append(c.ctrls, ctrlFrame{
		op:         op,
		startTypes: in,
		endTypes:   out,
		height:     len(c.ops),
	})
	for _, t := range in {
		c.pushOp(t)
	}
}

func (c *bodyChecker) popCtrl() (ctrlFrame, error) {
	if len(c.ctrls) == 0 {
		return ctrlFrame{}, fmt.Errorf("control stack underflow")
	}
	frame := c.ctrls[len(c.ctrls)-1]
	for i := len(frame.endTypes) - 1; i >= 0; i-- {
		if _, err := c.popOp(frame.endTypes[i]); err != nil {
			return ctrlFrame{}, err
		}
	}
	if len(c.ops) != frame.height {
		return ctrlFrame{}, fmt.Errorf("%d extra operands at end of block", len(c.ops)-frame.height)
	}
	c.ctrls = c.ctrls[:len(c.ctrls)-1]
	return frame, nil
}

func (c *bodyChecker) setUnreachable() {
	cur := &c.ctrls[len(c.ctrls)-1]
	c.ops = c.ops[:cur.height]
	cur.unreachable = true
}

func blockTypes(bt byte) (in, out []wasm.ValueType) {
	if bt == wasm.BlockEmpty {
		return nil, nil
	}
	return nil, []wasm.ValueType{wasm.ValueType(bt)}
}

func (v *validator) validateBody(ft wasm.FuncType, code *wasm.Code) error {
	c := &bodyChecker{v: v}
	c.locals = append(c.locals, ft.Params...)
	c.locals = append(c.locals, code.Locals...)
	c.pushCtrl(0, nil, ft.Results)

	for pc, in := range code.Body {
		if err := v.checkInstr(c, in); err != nil {
			return fmt.Errorf("instr %d (%s): %w", pc, in, err)
		}
		if len(c.ctrls) == 0 {
			if pc != len(code.Body)-1 {
				return fmt.Errorf("instr %d: code after function end", pc)
			}
			return nil
		}
	}
	return fmt.Errorf("function body not terminated by end")
}

func (v *validator) checkInstr(c *bodyChecker, in wasm.Instr) error {
	op := in.Op

	// Memory accesses share the alignment/width check.
	if w := op.AccessWidth(); w != 0 {
		if v.numMems == 0 {
			return fmt.Errorf("memory instruction with no memory declared")
		}
		if align := uint32(in.A); align > 31 || 1<<align > w {
			return fmt.Errorf("alignment 2^%d larger than access width %d", in.A, w)
		}
	}

	switch op {
	case wasm.OpUnreachable:
		c.setUnreachable()
	case wasm.OpNop:
	case wasm.OpBlock, wasm.OpLoop:
		inT, outT := blockTypes(in.BlockType())
		for i := len(inT) - 1; i >= 0; i-- {
			if _, err := c.popOp(inT[i]); err != nil {
				return err
			}
		}
		c.pushCtrl(op, inT, outT)
	case wasm.OpIf:
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		inT, outT := blockTypes(in.BlockType())
		for i := len(inT) - 1; i >= 0; i-- {
			if _, err := c.popOp(inT[i]); err != nil {
				return err
			}
		}
		c.pushCtrl(op, inT, outT)
	case wasm.OpElse:
		frame, err := c.popCtrl()
		if err != nil {
			return err
		}
		if frame.op != wasm.OpIf {
			return fmt.Errorf("else without matching if")
		}
		c.pushCtrl(wasm.OpElse, frame.startTypes, frame.endTypes)
	case wasm.OpEnd:
		frame, err := c.popCtrl()
		if err != nil {
			return err
		}
		if frame.op == wasm.OpIf && len(frame.endTypes) > 0 {
			// An if with a result but no else cannot produce the result
			// on the false path.
			return fmt.Errorf("if with result type %s has no else branch", frame.endTypes[0])
		}
		for _, t := range frame.endTypes {
			c.pushOp(t)
		}
	case wasm.OpBr:
		depth := int(in.A)
		if depth >= len(c.ctrls) {
			return fmt.Errorf("br depth %d exceeds control stack", depth)
		}
		target := &c.ctrls[len(c.ctrls)-1-depth]
		lt := target.labelTypes()
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := c.popOp(lt[i]); err != nil {
				return err
			}
		}
		c.setUnreachable()
	case wasm.OpBrIf:
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		depth := int(in.A)
		if depth >= len(c.ctrls) {
			return fmt.Errorf("br_if depth %d exceeds control stack", depth)
		}
		target := &c.ctrls[len(c.ctrls)-1-depth]
		lt := target.labelTypes()
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := c.popOp(lt[i]); err != nil {
				return err
			}
		}
		for _, t := range lt {
			c.pushOp(t)
		}
	case wasm.OpBrTable:
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		def := int(in.A)
		if def >= len(c.ctrls) {
			return fmt.Errorf("br_table default depth %d exceeds control stack", def)
		}
		defTypes := c.ctrls[len(c.ctrls)-1-def].labelTypes()
		for _, t := range in.Targets {
			if int(t) >= len(c.ctrls) {
				return fmt.Errorf("br_table depth %d exceeds control stack", t)
			}
			lt := c.ctrls[len(c.ctrls)-1-int(t)].labelTypes()
			if len(lt) != len(defTypes) {
				return fmt.Errorf("br_table target arities differ")
			}
			for i := range lt {
				if lt[i] != defTypes[i] {
					return fmt.Errorf("br_table target types differ")
				}
			}
		}
		for i := len(defTypes) - 1; i >= 0; i-- {
			if _, err := c.popOp(defTypes[i]); err != nil {
				return err
			}
		}
		c.setUnreachable()
	case wasm.OpReturn:
		res := c.ctrls[0].endTypes
		for i := len(res) - 1; i >= 0; i-- {
			if _, err := c.popOp(res[i]); err != nil {
				return err
			}
		}
		c.setUnreachable()
	case wasm.OpCall:
		idx := int(in.A)
		if idx >= len(v.funcs) {
			return fmt.Errorf("call to function %d out of range", idx)
		}
		ft := v.funcs[idx]
		for i := len(ft.Params) - 1; i >= 0; i-- {
			if _, err := c.popOp(ft.Params[i]); err != nil {
				return err
			}
		}
		for _, t := range ft.Results {
			c.pushOp(t)
		}
	case wasm.OpCallIndirect:
		if v.numTabs == 0 {
			return fmt.Errorf("call_indirect with no table declared")
		}
		ti := int(in.A)
		if ti >= len(v.m.Types) {
			return fmt.Errorf("call_indirect type %d out of range", ti)
		}
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		ft := v.m.Types[ti]
		for i := len(ft.Params) - 1; i >= 0; i-- {
			if _, err := c.popOp(ft.Params[i]); err != nil {
				return err
			}
		}
		for _, t := range ft.Results {
			c.pushOp(t)
		}
	case wasm.OpDrop:
		if _, err := c.popOpAny(); err != nil {
			return err
		}
	case wasm.OpSelect:
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		t1, err := c.popOpAny()
		if err != nil {
			return err
		}
		t2, err := c.popOpAny()
		if err != nil {
			return err
		}
		if t1 != t2 && t1 != unknown && t2 != unknown {
			return fmt.Errorf("select operands differ: %s vs %s", t1, t2)
		}
		if t1 == unknown {
			c.pushOp(t2)
		} else {
			c.pushOp(t1)
		}
	case wasm.OpLocalGet:
		idx := int(in.A)
		if idx >= len(c.locals) {
			return fmt.Errorf("local %d out of range", idx)
		}
		c.pushOp(c.locals[idx])
	case wasm.OpLocalSet:
		idx := int(in.A)
		if idx >= len(c.locals) {
			return fmt.Errorf("local %d out of range", idx)
		}
		if _, err := c.popOp(c.locals[idx]); err != nil {
			return err
		}
	case wasm.OpLocalTee:
		idx := int(in.A)
		if idx >= len(c.locals) {
			return fmt.Errorf("local %d out of range", idx)
		}
		if _, err := c.popOp(c.locals[idx]); err != nil {
			return err
		}
		c.pushOp(c.locals[idx])
	case wasm.OpGlobalGet:
		idx := int(in.A)
		if idx >= len(v.globals) {
			return fmt.Errorf("global %d out of range", idx)
		}
		c.pushOp(v.globals[idx].Type)
	case wasm.OpGlobalSet:
		idx := int(in.A)
		if idx >= len(v.globals) {
			return fmt.Errorf("global %d out of range", idx)
		}
		if !v.globals[idx].Mutable {
			return fmt.Errorf("global %d is immutable", idx)
		}
		if _, err := c.popOp(v.globals[idx].Type); err != nil {
			return err
		}
	case wasm.OpMemorySize:
		if v.numMems == 0 {
			return fmt.Errorf("memory.size with no memory declared")
		}
		c.pushOp(wasm.I32)
	case wasm.OpMemoryGrow:
		if v.numMems == 0 {
			return fmt.Errorf("memory.grow with no memory declared")
		}
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		c.pushOp(wasm.I32)
	case wasm.OpI32Const:
		c.pushOp(wasm.I32)
	case wasm.OpI64Const:
		c.pushOp(wasm.I64)
	case wasm.OpF32Const:
		c.pushOp(wasm.F32)
	case wasm.OpF64Const:
		c.pushOp(wasm.F64)
	case wasm.OpPrefix:
		return v.checkPrefixed(c, in)
	default:
		if sig, ok := simpleSigs[op]; ok {
			for i := len(sig.in) - 1; i >= 0; i-- {
				if _, err := c.popOp(sig.in[i]); err != nil {
					return err
				}
			}
			for _, t := range sig.out {
				c.pushOp(t)
			}
			return nil
		}
		if op.IsLoad() || op.IsStore() {
			return v.checkMemAccess(c, in)
		}
		return fmt.Errorf("unknown opcode %s", op)
	}
	return nil
}

func (v *validator) checkMemAccess(c *bodyChecker, in wasm.Instr) error {
	op := in.Op
	if op.IsStore() {
		var valType wasm.ValueType
		switch op {
		case wasm.OpI32Store, wasm.OpI32Store8, wasm.OpI32Store16:
			valType = wasm.I32
		case wasm.OpI64Store, wasm.OpI64Store8, wasm.OpI64Store16, wasm.OpI64Store32:
			valType = wasm.I64
		case wasm.OpF32Store:
			valType = wasm.F32
		case wasm.OpF64Store:
			valType = wasm.F64
		}
		if _, err := c.popOp(valType); err != nil {
			return err
		}
		if _, err := c.popOp(wasm.I32); err != nil {
			return err
		}
		return nil
	}
	// Loads pop an i32 address and push the loaded value.
	if _, err := c.popOp(wasm.I32); err != nil {
		return err
	}
	switch op {
	case wasm.OpI32Load, wasm.OpI32Load8S, wasm.OpI32Load8U,
		wasm.OpI32Load16S, wasm.OpI32Load16U:
		c.pushOp(wasm.I32)
	case wasm.OpI64Load, wasm.OpI64Load8S, wasm.OpI64Load8U,
		wasm.OpI64Load16S, wasm.OpI64Load16U, wasm.OpI64Load32S, wasm.OpI64Load32U:
		c.pushOp(wasm.I64)
	case wasm.OpF32Load:
		c.pushOp(wasm.F32)
	case wasm.OpF64Load:
		c.pushOp(wasm.F64)
	}
	return nil
}

func (v *validator) checkPrefixed(c *bodyChecker, in wasm.Instr) error {
	switch in.Sub {
	case wasm.SubI32TruncSatF32S, wasm.SubI32TruncSatF32U:
		return c.unop(wasm.F32, wasm.I32)
	case wasm.SubI32TruncSatF64S, wasm.SubI32TruncSatF64U:
		return c.unop(wasm.F64, wasm.I32)
	case wasm.SubI64TruncSatF32S, wasm.SubI64TruncSatF32U:
		return c.unop(wasm.F32, wasm.I64)
	case wasm.SubI64TruncSatF64S, wasm.SubI64TruncSatF64U:
		return c.unop(wasm.F64, wasm.I64)
	case wasm.SubMemoryCopy, wasm.SubMemoryFill:
		if v.numMems == 0 {
			return fmt.Errorf("%s with no memory declared", in.Sub)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.popOp(wasm.I32); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported prefixed opcode %d", in.Sub)
	}
}

func (c *bodyChecker) unop(in, out wasm.ValueType) error {
	if _, err := c.popOp(in); err != nil {
		return err
	}
	c.pushOp(out)
	return nil
}

type sig struct {
	in  []wasm.ValueType
	out []wasm.ValueType
}

func mk(in []wasm.ValueType, out ...wasm.ValueType) sig { return sig{in: in, out: out} }

var (
	i32 = wasm.I32
	i64 = wasm.I64
	f32 = wasm.F32
	f64 = wasm.F64
	tI  = []wasm.ValueType{i32}
	tII = []wasm.ValueType{i32, i32}
	tL  = []wasm.ValueType{i64}
	tLL = []wasm.ValueType{i64, i64}
	tF  = []wasm.ValueType{f32}
	tFF = []wasm.ValueType{f32, f32}
	tD  = []wasm.ValueType{f64}
	tDD = []wasm.ValueType{f64, f64}
)

// simpleSigs covers every fixed-signature numeric instruction.
var simpleSigs = map[wasm.Opcode]sig{}

func init() {
	add := func(ops []wasm.Opcode, s sig) {
		for _, op := range ops {
			simpleSigs[op] = s
		}
	}
	add([]wasm.Opcode{wasm.OpI32Eqz}, mk(tI, i32))
	add(rangeOps(wasm.OpI32Eq, wasm.OpI32GeU), mk(tII, i32))
	add([]wasm.Opcode{wasm.OpI64Eqz}, mk(tL, i32))
	add(rangeOps(wasm.OpI64Eq, wasm.OpI64GeU), mk(tLL, i32))
	add(rangeOps(wasm.OpF32Eq, wasm.OpF32Ge), mk(tFF, i32))
	add(rangeOps(wasm.OpF64Eq, wasm.OpF64Ge), mk(tDD, i32))
	add(rangeOps(wasm.OpI32Clz, wasm.OpI32Popcnt), mk(tI, i32))
	add(rangeOps(wasm.OpI32Add, wasm.OpI32Rotr), mk(tII, i32))
	add(rangeOps(wasm.OpI64Clz, wasm.OpI64Popcnt), mk(tL, i64))
	add(rangeOps(wasm.OpI64Add, wasm.OpI64Rotr), mk(tLL, i64))
	add(rangeOps(wasm.OpF32Abs, wasm.OpF32Sqrt), mk(tF, f32))
	add(rangeOps(wasm.OpF32Add, wasm.OpF32Copysign), mk(tFF, f32))
	add(rangeOps(wasm.OpF64Abs, wasm.OpF64Sqrt), mk(tD, f64))
	add(rangeOps(wasm.OpF64Add, wasm.OpF64Copysign), mk(tDD, f64))

	simpleSigs[wasm.OpI32WrapI64] = mk(tL, i32)
	simpleSigs[wasm.OpI32TruncF32S] = mk(tF, i32)
	simpleSigs[wasm.OpI32TruncF32U] = mk(tF, i32)
	simpleSigs[wasm.OpI32TruncF64S] = mk(tD, i32)
	simpleSigs[wasm.OpI32TruncF64U] = mk(tD, i32)
	simpleSigs[wasm.OpI64ExtendI32S] = mk(tI, i64)
	simpleSigs[wasm.OpI64ExtendI32U] = mk(tI, i64)
	simpleSigs[wasm.OpI64TruncF32S] = mk(tF, i64)
	simpleSigs[wasm.OpI64TruncF32U] = mk(tF, i64)
	simpleSigs[wasm.OpI64TruncF64S] = mk(tD, i64)
	simpleSigs[wasm.OpI64TruncF64U] = mk(tD, i64)
	simpleSigs[wasm.OpF32ConvertI32S] = mk(tI, f32)
	simpleSigs[wasm.OpF32ConvertI32U] = mk(tI, f32)
	simpleSigs[wasm.OpF32ConvertI64S] = mk(tL, f32)
	simpleSigs[wasm.OpF32ConvertI64U] = mk(tL, f32)
	simpleSigs[wasm.OpF32DemoteF64] = mk(tD, f32)
	simpleSigs[wasm.OpF64ConvertI32S] = mk(tI, f64)
	simpleSigs[wasm.OpF64ConvertI32U] = mk(tI, f64)
	simpleSigs[wasm.OpF64ConvertI64S] = mk(tL, f64)
	simpleSigs[wasm.OpF64ConvertI64U] = mk(tL, f64)
	simpleSigs[wasm.OpF64PromoteF32] = mk(tF, f64)
	simpleSigs[wasm.OpI32ReinterpretF32] = mk(tF, i32)
	simpleSigs[wasm.OpI64ReinterpretF64] = mk(tD, i64)
	simpleSigs[wasm.OpF32ReinterpretI32] = mk(tI, f32)
	simpleSigs[wasm.OpF64ReinterpretI64] = mk(tL, f64)
	simpleSigs[wasm.OpI32Extend8S] = mk(tI, i32)
	simpleSigs[wasm.OpI32Extend16S] = mk(tI, i32)
	simpleSigs[wasm.OpI64Extend8S] = mk(tL, i64)
	simpleSigs[wasm.OpI64Extend16S] = mk(tL, i64)
	simpleSigs[wasm.OpI64Extend32S] = mk(tL, i64)
}

func rangeOps(lo, hi wasm.Opcode) []wasm.Opcode {
	ops := make([]wasm.Opcode, 0, hi-lo+1)
	for op := lo; op <= hi; op++ {
		ops = append(ops, op)
	}
	return ops
}

// EffectiveAlign returns the natural alignment exponent for an access
// width (log2), used by engines when charging alignment penalties.
func EffectiveAlign(width uint32) uint32 {
	if width == 0 {
		return 0
	}
	return uint32(bits.TrailingZeros32(width))
}
