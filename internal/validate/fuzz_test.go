package validate_test

import (
	"testing"

	"leapsandbounds/internal/validate"
	"leapsandbounds/internal/wasm"
	"leapsandbounds/internal/workloads"
)

// FuzzValidate drives the validator with whatever modules the binary
// decoder accepts from arbitrary bytes. The property is purely
// defensive: Module must return (an error or nil), never panic —
// malformed-but-decodable modules (bad indices, type confusion,
// truncated bodies) are exactly what the validator exists to reject
// gracefully before an engine dereferences them.
func FuzzValidate(f *testing.F) {
	for _, spec := range workloads.All() {
		m, _ := spec.Build(workloads.Test)
		if bin, err := wasm.Encode(m); err == nil {
			f.Add(bin)
			c := append([]byte(nil), bin...)
			c[len(c)/2] ^= 0xff
			f.Add(c)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wasm.Decode(data)
		if err != nil {
			return
		}
		_ = validate.Module(m)
	})
}
