package validate_test

import (
	"strings"
	"testing"

	"leapsandbounds/internal/validate"
	"leapsandbounds/internal/wasm"
)

// fn builds a minimal one-function module around the given body.
func fn(params, results []wasm.ValueType, locals []wasm.ValueType, body ...wasm.Instr) *wasm.Module {
	body = append(body, wasm.Instr{Op: wasm.OpEnd})
	return &wasm.Module{
		Types: []wasm.FuncType{{Params: params, Results: results}},
		Funcs: []uint32{0},
		Code:  []wasm.Code{{Locals: locals, Body: body}},
		Mems:  []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}}},
	}
}

func i(op wasm.Opcode, a ...uint64) wasm.Instr {
	in := wasm.Instr{Op: op}
	if len(a) > 0 {
		in.A = a[0]
	}
	if len(a) > 1 {
		in.B = a[1]
	}
	return in
}

func wantOK(t *testing.T, m *wasm.Module) {
	t.Helper()
	if err := validate.Module(m); err != nil {
		t.Fatalf("expected valid, got: %v", err)
	}
}

func wantErr(t *testing.T, m *wasm.Module, substr string) {
	t.Helper()
	err := validate.Module(m)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestValidSimple(t *testing.T) {
	// (param i32 i32) (result i32): add
	m := fn([]wasm.ValueType{wasm.I32, wasm.I32}, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpLocalGet, 0), i(wasm.OpLocalGet, 1), i(wasm.OpI32Add))
	wantOK(t, m)
}

func TestStackUnderflow(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil, i(wasm.OpI32Add))
	wantErr(t, m, "underflow")
}

func TestTypeMismatch(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 1), i(wasm.OpF64Const, 0), i(wasm.OpI32Add))
	wantErr(t, m, "type mismatch")
}

func TestResultMissing(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil)
	wantErr(t, m, "underflow")
}

func TestExtraOperandAtEnd(t *testing.T) {
	m := fn(nil, nil, nil, i(wasm.OpI32Const, 1))
	wantErr(t, m, "extra operands")
}

func TestLocalOutOfRange(t *testing.T) {
	m := fn(nil, nil, []wasm.ValueType{wasm.I32}, i(wasm.OpLocalGet, 5), i(wasm.OpDrop))
	wantErr(t, m, "out of range")
}

func TestBrDepth(t *testing.T) {
	ok := fn(nil, nil, nil,
		i(wasm.OpBlock, wasm.BlockEmpty), i(wasm.OpBr, 0), i(wasm.OpEnd))
	wantOK(t, ok)
	bad := fn(nil, nil, nil,
		i(wasm.OpBlock, wasm.BlockEmpty), i(wasm.OpBr, 5), i(wasm.OpEnd))
	wantErr(t, bad, "br depth")
}

func TestIfRequiresCondition(t *testing.T) {
	m := fn(nil, nil, nil,
		i(wasm.OpIf, wasm.BlockEmpty), i(wasm.OpEnd))
	wantErr(t, m, "underflow")
}

func TestIfWithResultRequiresElse(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 1),
		i(wasm.OpIf, uint64(wasm.I32)),
		i(wasm.OpI32Const, 2),
		i(wasm.OpEnd))
	wantErr(t, m, "no else")
}

func TestIfElseResult(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 1),
		i(wasm.OpIf, uint64(wasm.I32)),
		i(wasm.OpI32Const, 2),
		i(wasm.OpElse),
		i(wasm.OpI32Const, 3),
		i(wasm.OpEnd))
	wantOK(t, m)
}

func TestUnreachableRelaxesTyping(t *testing.T) {
	// After unreachable, the operand stack is polymorphic: adding
	// "out of thin air" values is allowed by the spec.
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpUnreachable), i(wasm.OpI32Add))
	wantOK(t, m)
}

func TestSelectOperandAgreement(t *testing.T) {
	bad := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 1), i(wasm.OpF64Const, 0), i(wasm.OpI32Const, 1),
		i(wasm.OpSelect))
	wantErr(t, bad, "select")
}

func TestMemoryOpsRequireMemory(t *testing.T) {
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 0), i(wasm.OpI32Load, 2, 0))
	m.Mems = nil
	wantErr(t, m, "no memory")
}

func TestAlignmentBound(t *testing.T) {
	// alignment 2^3 = 8 exceeds i32.load's 4-byte width
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpI32Const, 0), i(wasm.OpI32Load, 3, 0))
	wantErr(t, m, "alignment")
}

func TestGlobalSetImmutable(t *testing.T) {
	m := fn(nil, nil, nil,
		i(wasm.OpI32Const, 1), i(wasm.OpGlobalSet, 0))
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.I32, Mutable: false},
		Init: wasm.ConstExpr{Op: wasm.OpI32Const, Value: 0},
	}}
	wantErr(t, m, "immutable")
}

func TestGlobalInitTypeMismatch(t *testing.T) {
	m := fn(nil, nil, nil)
	m.Globals = []wasm.Global{{
		Type: wasm.GlobalType{Type: wasm.I32, Mutable: true},
		Init: wasm.ConstExpr{Op: wasm.OpF64Const, Value: 0},
	}}
	wantErr(t, m, "initializer type")
}

func TestCallArity(t *testing.T) {
	// Function 0 calls itself without the needed argument.
	m := fn([]wasm.ValueType{wasm.I32}, nil, nil, i(wasm.OpCall, 0))
	wantErr(t, m, "underflow")
}

func TestCallIndirectRequiresTable(t *testing.T) {
	m := fn(nil, nil, nil,
		i(wasm.OpI32Const, 0), i(wasm.OpCallIndirect, 0))
	wantErr(t, m, "no table")
}

func TestStartSignature(t *testing.T) {
	m := fn([]wasm.ValueType{wasm.I32}, nil, nil, i(wasm.OpDrop))
	// Make the body valid for the signature first.
	m.Code[0].Body = []wasm.Instr{i(wasm.OpNop), i(wasm.OpEnd)}
	start := uint32(0)
	m.Start = &start
	wantErr(t, m, "start function")
}

func TestExportIndexBounds(t *testing.T) {
	m := fn(nil, nil, nil)
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExternFunc, Index: 7}}
	wantErr(t, m, "out of range")
}

func TestElemSegmentBounds(t *testing.T) {
	m := fn(nil, nil, nil)
	m.Tables = []wasm.TableType{{Elem: wasm.Funcref, Limits: wasm.Limits{Min: 1, Max: 1, HasMax: true}}}
	m.Elems = []wasm.ElemSegment{{
		Offset: wasm.ConstExpr{Op: wasm.OpI32Const, Value: 0},
		Funcs:  []uint32{99},
	}}
	wantErr(t, m, "out of range")
}

func TestBrTableArityAgreement(t *testing.T) {
	// One target yields a value, the other does not.
	m := fn(nil, nil, nil,
		i(wasm.OpBlock, uint64(wasm.I32)),
		i(wasm.OpBlock, wasm.BlockEmpty),
		i(wasm.OpI32Const, 0),
		wasm.Instr{Op: wasm.OpBrTable, Targets: []uint32{0}, A: 1},
		i(wasm.OpEnd),
		i(wasm.OpI32Const, 1),
		i(wasm.OpEnd),
		i(wasm.OpDrop),
	)
	wantErr(t, m, "arities differ")
}

func TestLoopBranchTakesNoValues(t *testing.T) {
	// br to a loop header targets the loop start: label types are the
	// loop's inputs (empty in MVP), so this is valid even though the
	// loop yields a result at fallthrough.
	m := fn(nil, []wasm.ValueType{wasm.I32}, nil,
		i(wasm.OpLoop, uint64(wasm.I32)),
		i(wasm.OpI32Const, 42),
		i(wasm.OpEnd))
	wantOK(t, m)
}
