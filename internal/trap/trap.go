// Package trap defines WebAssembly trap values shared by all
// engines and the linear-memory layer. Traps propagate as panics
// inside engine execution and are converted to errors at the
// public Invoke boundary.
package trap

import "fmt"

// Kind enumerates the trap causes defined by the specification plus
// runtime-specific ones.
type Kind int

// Trap kinds.
const (
	OutOfBounds Kind = iota
	DivByZero
	IntOverflow
	InvalidConversion
	Unreachable
	IndirectCallNull
	IndirectCallType
	TableOutOfBounds
	StackOverflow
	MemoryLimit // memory.grow beyond max (not a trap in wasm; grow returns -1; used for internal errors)
	// UnalignedAtomic: an atomic accessor was applied to an address
	// that is not naturally aligned for its width (the wasm threads
	// proposal traps here rather than tearing).
	UnalignedAtomic
	HostError
	// Injected: an injected transient fault persisted past the
	// bounded retry/fallback budget (chaos testing only; never raised
	// outside fault-injection runs).
	Injected
)

var kindNames = map[Kind]string{
	OutOfBounds:       "out of bounds memory access",
	DivByZero:         "integer divide by zero",
	IntOverflow:       "integer overflow",
	InvalidConversion: "invalid conversion to integer",
	Unreachable:       "unreachable executed",
	IndirectCallNull:  "uninitialized table element",
	IndirectCallType:  "indirect call type mismatch",
	TableOutOfBounds:  "undefined table element",
	StackOverflow:     "call stack exhausted",
	MemoryLimit:       "memory limit exceeded",
	UnalignedAtomic:   "unaligned atomic access",
	HostError:         "host error",
	Injected:          "injected fault persisted",
}

// String returns the specification-style description of the kind.
func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap is the panic value engines throw; it satisfies error.
type Trap struct {
	Kind   Kind
	Detail string
	// Err carries a wrapped host error (e.g. a WASI exit), exposed
	// through errors.Unwrap.
	Err error
}

func (t *Trap) Error() string {
	name := kindNames[t.Kind]
	if t.Err != nil {
		return fmt.Sprintf("wasm trap: %s: %v", name, t.Err)
	}
	if t.Detail == "" {
		return "wasm trap: " + name
	}
	return fmt.Sprintf("wasm trap: %s (%s)", name, t.Detail)
}

// Unwrap exposes the wrapped host error.
func (t *Trap) Unwrap() error { return t.Err }

// ThrowHostErr panics with a HostError trap wrapping err, preserving
// it for errors.As at the Invoke boundary.
func ThrowHostErr(err error) {
	panic(&Trap{Kind: HostError, Err: err})
}

// Throw panics with a trap of the given kind.
func Throw(kind Kind) {
	panic(&Trap{Kind: kind})
}

// Throwf panics with a trap carrying detail text.
func Throwf(kind Kind, format string, args ...any) {
	panic(&Trap{Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// ThrowWrap panics with a trap that wraps err (exposed through
// errors.Unwrap/As at the Invoke boundary) plus detail text.
func ThrowWrap(kind Kind, err error, format string, args ...any) {
	panic(&Trap{Kind: kind, Detail: fmt.Sprintf(format, args...), Err: err})
}

// Recover converts a recovered panic value into a *Trap error,
// re-panicking for non-trap values. Use as:
//
//	defer func() {
//		if r := recover(); r != nil {
//			err = trap.Recover(r)
//		}
//	}()
func Recover(r any) error {
	if t, ok := r.(*Trap); ok {
		return t
	}
	panic(r)
}
