package trap

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestThrowRecover(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = Recover(r)
			}
		}()
		Throw(DivByZero)
		return nil
	}()
	var tr *Trap
	if !errors.As(err, &tr) || tr.Kind != DivByZero {
		t.Fatalf("got %v", err)
	}
	if !strings.Contains(err.Error(), "divide by zero") {
		t.Errorf("message %q", err)
	}
}

func TestThrowfDetail(t *testing.T) {
	err := capture(func() { Throwf(OutOfBounds, "at %#x", 0x1234) })
	if !strings.Contains(err.Error(), "0x1234") {
		t.Errorf("detail lost: %q", err)
	}
}

func TestThrowHostErrUnwraps(t *testing.T) {
	inner := fmt.Errorf("disk on fire")
	err := capture(func() { ThrowHostErr(inner) })
	if !errors.Is(err, inner) {
		t.Errorf("wrapped error lost: %v", err)
	}
}

func TestRecoverRepanicsForeignValues(t *testing.T) {
	defer func() {
		if r := recover(); r != "not a trap" {
			t.Errorf("foreign panic swallowed: %v", r)
		}
	}()
	func() {
		defer func() {
			if r := recover(); r != nil {
				_ = Recover(r) // must re-panic
			}
		}()
		panic("not a trap")
	}()
	t.Error("unreachable")
}

func TestAllKindsHaveMessages(t *testing.T) {
	for k := OutOfBounds; k <= HostError; k++ {
		msg := (&Trap{Kind: k}).Error()
		if strings.Contains(msg, "%!") || msg == "wasm trap: " {
			t.Errorf("kind %d message %q", k, msg)
		}
	}
}

func capture(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = Recover(r)
		}
	}()
	f()
	return nil
}
