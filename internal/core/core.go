// Package core defines the engine-independent runtime plumbing: the
// Engine/CompiledModule/Instance interfaces every runtime analog
// implements, execution configuration (bounds-checking strategy,
// hardware profile, cycle accounting), host-function imports, and
// shared instantiation logic (import resolution, global/table/data
// initialization).
//
// This is the layer where the paper's contribution plugs in: a
// Config selects one of the five bounds-checking strategies and one
// of the three ISA profiles, and every engine honours both.
package core

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"time"

	"leapsandbounds/internal/faultinject"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/prof"
	"leapsandbounds/internal/trap"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// Config selects the execution environment for compiled modules.
type Config struct {
	// Strategy is the bounds-checking mechanism (paper §3.1).
	Strategy mem.Strategy
	// Profile is the simulated hardware profile; required.
	Profile *isa.Profile
	// AS is the simulated process address space. All instances
	// sharing a process must share one AS; if nil a private AS is
	// created from the profile's VM config at instantiation.
	AS *vmm.AddressSpace
	// Pool recycles uffd arenas; required when Strategy == mem.Uffd.
	Pool *mem.ArenaPool
	// UffdNoPool disables arena recycling for the Uffd strategy
	// (ablation: userfaultfd faults without userspace arena
	// management).
	UffdNoPool bool
	// UffdPoll selects userfaultfd's poll-based delivery (handler
	// thread) instead of SIGBUS delivery (ablation, paper §2.3.1
	// footnote 2).
	UffdPoll bool
	// EagerCommit makes the Mprotect strategy commit at grow time
	// with one mprotect call instead of lazily per fault (ablation,
	// see mem.Config.EagerCommit).
	EagerCommit bool
	// CountCycles enables the per-ISA cycle accounting model.
	CountCycles bool
	// Obs is the scope instance metrics land under (invocations,
	// traps, cycle-class totals). If nil, a child scope "engine" of
	// the address space's scope is used, so every engine reports
	// uniformly without explicit wiring.
	Obs *obs.Scope
	// MaxPages caps memory for modules that declare no maximum.
	MaxPages uint32
	// CallDepth bounds recursion; 0 means the default (1000).
	CallDepth int
	// Fault, when non-nil, installs a deterministic fault injector on
	// the address space (chaos testing): vmm syscall and fault paths
	// consult it, and the mem layer's retry/fallback machinery absorbs
	// what it injects. An injector already installed on AS wins, so
	// harness-level wiring is not overwritten.
	Fault *faultinject.Plan
	// SharedMem attaches the instance to an existing wasm-threads-style
	// shared linear memory (built with NewSharedMemory) instead of
	// allocating a private one. All instances of a thread group pass
	// the same *mem.Memory; the instance does not close it (the creator
	// owns its lifetime), and data segments are (re)initialized by each
	// instantiation, so attach all workers before mutating the memory.
	SharedMem *mem.Memory
	// Span is the causal parent for the instance's spans: the
	// instantiate span opens under it, and kernel work between
	// invokes (memory teardown, recycling) attributes to it. The
	// harness points it at the current iteration's span; zero means
	// root / untraced.
	Span obs.SpanRef
	// Prof, when non-nil and started, samples the instance: the
	// engine publishes its current (function, opcode class, check
	// flags) into a per-instance cell the profiler's goroutine reads.
	// Instances created while the profiler is stopped (or with Prof
	// nil) take the uninstrumented hot path.
	Prof *prof.Profiler
	// ProfLabel names the executing engine/tier in profile rows.
	// Engines fill it in when the caller leaves it empty, so the
	// tiered engine's baseline and optimizing tiers attribute
	// separately.
	ProfLabel string
}

// DefaultMaxPages caps memories that declare no maximum: 2048 wasm
// pages = 128 MiB, ample for every workload in this repository.
const DefaultMaxPages = 2048

// DefaultCallDepth is the default call-stack bound.
const DefaultCallDepth = 1000

// withDefaults normalizes a config.
func (c Config) withDefaults() (Config, error) {
	if c.Profile == nil {
		return c, errors.New("core: Config.Profile is required")
	}
	if c.MaxPages == 0 {
		c.MaxPages = DefaultMaxPages
	}
	if c.CallDepth == 0 {
		c.CallDepth = DefaultCallDepth
	}
	if c.AS == nil {
		c.AS = vmm.New(c.Profile.VM)
	}
	if c.Fault != nil && c.AS.Injector() == nil {
		c.AS.SetInjector(faultinject.New(*c.Fault, c.AS.Obs().Child("faultinject")))
	}
	if c.Strategy == mem.Uffd && c.Pool == nil && !c.UffdNoPool {
		// One pool per simulated process, not per instantiation: a
		// fresh pool here would defeat arena recycling for every
		// caller that doesn't wire Pool explicitly (the default
		// serverless path), turning each instance teardown into a
		// munmap and each start into an mmap — exactly the mmap-lock
		// traffic the uffd strategy exists to avoid.
		c.Pool = mem.SharedPool(c.AS)
	}
	if c.Obs == nil {
		c.Obs = c.AS.Obs().Child("engine")
	}
	return c, nil
}

// Codegen carries per-engine code-generation knobs. Unlike Config it
// is compile-time state: it shapes the emitted artifact, so engines
// fold it into their module-cache options string — artifacts built
// under different knobs must never alias in the cache.
type Codegen struct {
	// BoundsElision enables the bounds-check elision pass in engines
	// that support it (the optimizing compiled engine): per-access
	// watermark checks are coalesced into per-region range checks and
	// hoisted out of affine loops, with a checked fallback copy that
	// preserves exact trap sites and clamp redirect semantics. The
	// emitted code stays strategy-agnostic — elision is a codegen
	// property, the strategy remains instantiation-time.
	BoundsElision bool

	// RegisterIR enables the register-IR recompile tier in engines
	// that support it: after the stack-discipline optimizer deletes
	// push/pop traffic, surviving operand slots are renumbered into a
	// dense virtual-register file and adjacent dependent pairs
	// (compare+branch, load+op, op+store) fuse into superinstructions
	// dispatched once. Like BoundsElision it changes only dispatch
	// count and frame size, never observable behavior.
	RegisterIR bool
}

// CacheKey renders the codegen knobs as a canonical options string
// for module-cache keys. It iterates every field reflectively so a
// knob added to Codegen can never be silently dropped from the key —
// artifacts built under different knobs must never alias. All engines
// must build their cache-options strings through this one function.
func (cg Codegen) CacheKey() string {
	var sb strings.Builder
	v := reflect.ValueOf(cg)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", t.Field(i).Name, v.Field(i).Interface())
	}
	return sb.String()
}

// CodegenSetter is implemented by engines whose code generation can
// be reconfigured. Call it before the engine's first Compile.
type CodegenSetter interface {
	SetCodegen(Codegen)
}

// CodegenGetter is the read side: callers that want to flip one knob
// (the harness's ablation switches) read the current configuration,
// modify it, and SetCodegen the result instead of clobbering the
// engine's other defaults.
type CodegenGetter interface {
	Codegen() Codegen
}

// ModuleCache is a process-wide cache of compiled modules, keyed by
// module content hash, engine name and codegen-affecting options
// (implemented by internal/modcache). Engines route Compile through
// one so that repeated compiles of the same module become lookups;
// the boolean reports whether the artifact came from the cache. A
// sound cache key deliberately excludes instantiation-time
// configuration (bounds-checking strategy, hardware profile, address
// space): compiled modules are instantiation-independent — the
// invariant TestCompiledModuleInstantiationIndependent enforces.
type ModuleCache interface {
	// GetOrCompile returns the cached artifact for (m, engine, opts),
	// or runs compile exactly once (concurrent requests for the same
	// key are deduplicated) and caches its result.
	GetOrCompile(m *wasm.Module, engine, opts string, compile func() (CompiledModule, error)) (CompiledModule, bool, error)
	// Peek returns the cached artifact without compiling.
	Peek(m *wasm.Module, engine, opts string) (CompiledModule, bool)
}

// CacheSetter is implemented by engines whose compile path can be
// redirected to a different ModuleCache — or detached from caching
// entirely with a nil cache (benchmarks that measure compile cost
// need every Compile to do the work). Call it before the engine's
// first Compile; it is not synchronized against concurrent compiles.
type CacheSetter interface {
	SetCache(ModuleCache)
}

// Engine compiles modules for one runtime design point.
type Engine interface {
	// Name is the short identifier used in figures (e.g. "wavm").
	Name() string
	// Description explains which real runtime the engine models.
	Description() string
	// Compile prepares a validated module for instantiation. The
	// returned module is immutable and safe for concurrent
	// instantiation from many goroutines.
	Compile(m *wasm.Module) (CompiledModule, error)
}

// CompiledModule is a compiled, instantiable module.
type CompiledModule interface {
	// Instantiate creates one isolate: its own memory, globals and
	// table. Instances are not safe for concurrent use.
	Instantiate(cfg Config, imports Imports) (Instance, error)
}

// Instance is one running isolate.
type Instance interface {
	// Invoke calls an exported function. Values are raw 64-bit bits.
	Invoke(name string, args ...uint64) ([]uint64, error)
	// Memory returns the instance memory, or nil if none.
	Memory() *mem.Memory
	// Counts returns accumulated cycle-model counts (nil when
	// accounting is disabled).
	Counts() *isa.Counts
	// Close releases instance resources (unmaps or recycles memory).
	Close() error
}

// HostContext is passed to host functions.
type HostContext struct {
	Mem *mem.Memory
	// Env carries host-module state (e.g. the WASI environment).
	Env any

	// views/revals count HostMemView acquisitions and post-grow
	// revalidations (cached metric handles; nil in hand-built
	// contexts, which View tolerates).
	views  *obs.Counter
	revals *obs.Counter
}

// HostFunc is a function provided by the embedder.
type HostFunc struct {
	Type wasm.FuncType
	// Fn receives raw argument bits and returns the raw result (used
	// only when Type.Results is non-empty).
	Fn func(hc *HostContext, args []uint64) (uint64, error)
}

// Imports maps module name → field name → host function.
type Imports map[string]map[string]HostFunc

// Resolve returns the host function for an import, or an error.
func (im Imports) Resolve(module, name string, want wasm.FuncType) (HostFunc, error) {
	fields, ok := im[module]
	if !ok {
		return HostFunc{}, fmt.Errorf("core: unknown import module %q", module)
	}
	hf, ok := fields[name]
	if !ok {
		return HostFunc{}, fmt.Errorf("core: unknown import %q.%q", module, name)
	}
	if !hf.Type.Equal(want) {
		return HostFunc{}, fmt.Errorf("core: import %q.%q has type %s, module wants %s",
			module, name, hf.Type, want)
	}
	return hf, nil
}

// InstanceBase holds the engine-independent runtime state of one
// instance and implements the shared parts of instantiation.
type InstanceBase struct {
	Module  *wasm.Module
	Cfg     Config
	Mem     *mem.Memory
	Globals []uint64
	// Table maps table slots to function-space indices; Filled marks
	// initialized slots.
	Table  []uint32
	Filled []bool
	// HostFuncs are the resolved imported functions, in import order.
	HostFuncs []HostFunc
	// HostCtx is passed to host calls.
	HostCtx HostContext
	// CycleCounts accumulates per-class operation counts when
	// Cfg.CountCycles is set.
	CycleCounts isa.Counts
	// Depth is the current call depth (engines maintain it).
	Depth int

	// obsInvokes/obsTraps are cached metric handles so the per-call
	// cost is one atomic add; obsFlushed guards the one-time cycle
	// flush in Close. obsInjected counts the subset of traps caused
	// by injected faults that exhausted the retry budget.
	// obsHostcalls counts guest→host boundary crossings.
	obsInvokes   *obs.Counter
	obsTraps     *obs.Counter
	obsInjected  *obs.Counter
	obsHostcalls *obs.Counter
	obsFlushed   bool

	// invokeRef is the live invoke span (set by BeginInvoke, cleared
	// by EndInvoke) so hostcall spans nest under the call they
	// interrupt. Zero when tracing is off.
	invokeRef obs.SpanRef

	// ProfCell is the sampling profiler's publication slot, nil
	// unless Cfg.Prof was started before instantiation. Engines
	// hoist it into their dispatch loops.
	ProfCell *prof.Cell

	// sharedMem marks Mem as attached (Config.SharedMem): the instance
	// neither closes it nor repoints its span parent per invoke —
	// sibling workers invoke concurrently, and a per-invoke repoint
	// would race; the run driver sets one parent for the whole scenario.
	sharedMem bool
}

// NewInstanceBase performs the engine-independent instantiation
// steps in specification order: import resolution, memory and table
// allocation, global initialization, then element and data segments.
// FuncNames builds the function-index → name table the profiler
// resolves samples against: the module's name section where present,
// "fnN" placeholders elsewhere (imports included, so indices line up
// with the function space the engines publish).
func FuncNames(m *wasm.Module) []string {
	n := m.NumImportedFuncs() + len(m.Code)
	names := make([]string, n)
	for i := range names {
		if nm, ok := m.FuncNames[uint32(i)]; ok && nm != "" {
			names[i] = nm
		}
	}
	return names
}

func NewInstanceBase(m *wasm.Module, cfg Config, imports Imports) (*InstanceBase, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	b := &InstanceBase{
		Module:       m,
		Cfg:          cfg,
		obsInvokes:   cfg.Obs.Counter("invokes"),
		obsTraps:     cfg.Obs.Counter("traps"),
		obsInjected:  cfg.Obs.Counter("injected_traps"),
		obsHostcalls: cfg.Obs.Counter("hostcalls"),
	}
	if cfg.Prof != nil {
		b.ProfCell = cfg.Prof.Register(cfg.ProfLabel, cfg.Strategy.String(), FuncNames(m))
	}
	instSpan := cfg.Obs.StartSpan(obs.SpanInstantiate, cfg.Span)
	defer instSpan.End()

	for _, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternFunc:
			ft := m.Types[im.Func]
			hf, err := imports.Resolve(im.Module, im.Name, ft)
			if err != nil {
				return nil, err
			}
			b.HostFuncs = append(b.HostFuncs, hf)
		case wasm.ExternMemory, wasm.ExternTable, wasm.ExternGlobal:
			return nil, fmt.Errorf("core: %v imports are not supported (import %q.%q)",
				im.Kind, im.Module, im.Name)
		}
	}

	if lim, ok := m.MemoryLimits(); ok {
		if cfg.SharedMem != nil {
			if !cfg.SharedMem.Shared() {
				return nil, errors.New("core: Config.SharedMem must be built with mem.Config.Shared")
			}
			if cfg.SharedMem.Strategy() != cfg.Strategy {
				return nil, fmt.Errorf("core: shared memory strategy %v does not match config strategy %v",
					cfg.SharedMem.Strategy(), cfg.Strategy)
			}
			if uint64(lim.Min)*wasm.PageSize > cfg.SharedMem.SizeBytes() {
				return nil, fmt.Errorf("core: shared memory smaller than module minimum (%d pages < %d)",
					cfg.SharedMem.SizePages(), lim.Min)
			}
			b.Mem = cfg.SharedMem
			b.sharedMem = true
		} else {
			maxPages := cfg.MaxPages
			if lim.HasMax && lim.Max < maxPages {
				maxPages = lim.Max
			}
			if maxPages < lim.Min {
				maxPages = lim.Min
			}
			if maxPages == 0 {
				maxPages = 1
			}
			memParent := cfg.Span
			if instSpan.Ref().Valid() {
				memParent = instSpan.Ref()
			}
			mm, err := mem.New(mem.Config{
				Strategy:    cfg.Strategy,
				AS:          cfg.AS,
				MinPages:    lim.Min,
				MaxPages:    maxPages,
				Pool:        cfg.Pool,
				DisablePool: cfg.UffdNoPool,
				UffdPoll:    cfg.UffdPoll,
				EagerCommit: cfg.EagerCommit,
				Span:        memParent,
			})
			if err != nil {
				return nil, err
			}
			b.Mem = mm
		}
	} else if cfg.SharedMem != nil {
		return nil, errors.New("core: Config.SharedMem set but module declares no memory")
	}
	b.HostCtx = HostContext{
		Mem:    b.Mem,
		views:  cfg.Obs.Counter("hostview_acquires"),
		revals: cfg.Obs.Counter("hostview_revalidations"),
	}

	// Globals.
	numImported := m.NumImportedGlobals()
	if numImported > 0 {
		b.close()
		return nil, errors.New("core: imported globals are not supported")
	}
	b.Globals = make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		v, err := b.evalConst(g.Init)
		if err != nil {
			b.close()
			return nil, fmt.Errorf("core: global %d: %w", i, err)
		}
		b.Globals[i] = v
	}

	// Table.
	if len(m.Tables) > 0 {
		b.Table = make([]uint32, m.Tables[0].Limits.Min)
		b.Filled = make([]bool, len(b.Table))
	}
	for i, e := range m.Elems {
		off, err := b.evalConst(e.Offset)
		if err != nil {
			b.close()
			return nil, fmt.Errorf("core: element segment %d: %w", i, err)
		}
		start := uint32(off)
		if uint64(start)+uint64(len(e.Funcs)) > uint64(len(b.Table)) {
			b.close()
			return nil, fmt.Errorf("core: element segment %d out of table bounds", i)
		}
		for j, fi := range e.Funcs {
			b.Table[start+uint32(j)] = fi
			b.Filled[start+uint32(j)] = true
		}
	}

	// Data segments.
	for i, ds := range m.Data {
		off, err := b.evalConst(ds.Offset)
		if err != nil {
			b.close()
			return nil, fmt.Errorf("core: data segment %d: %w", i, err)
		}
		if b.Mem == nil {
			b.close()
			return nil, fmt.Errorf("core: data segment %d with no memory", i)
		}
		start := uint64(uint32(off))
		if start+uint64(len(ds.Data)) > b.Mem.SizeBytes() {
			b.close()
			return nil, fmt.Errorf("core: data segment %d out of memory bounds", i)
		}
		if err := b.writeSegment(start, ds.Data); err != nil {
			b.close()
			return nil, fmt.Errorf("core: data segment %d: %w", i, err)
		}
	}
	// Instantiation is done: faults and kernel work from here on
	// belong to whatever context owns the instance, not to the
	// (about-to-end) instantiate span. Shared memories keep whatever
	// parent their creator set — many instances attach to one mapping
	// and must not fight over its attribution.
	if b.Mem != nil && !b.sharedMem {
		b.Mem.SetSpanParent(cfg.Span)
	}
	return b, nil
}

// writeSegment copies segment bytes, converting traps to errors.
func (b *InstanceBase) writeSegment(start uint64, data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = trap.Recover(r)
		}
	}()
	b.Mem.WriteAt(start, data)
	return nil
}

func (b *InstanceBase) evalConst(e wasm.ConstExpr) (uint64, error) {
	switch e.Op {
	case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
		return e.Value, nil
	default:
		return 0, fmt.Errorf("unsupported constant initializer %s", e.Op)
	}
}

func (b *InstanceBase) close() {
	b.Cfg.Prof.Unregister(b.ProfCell)
	b.ProfCell = nil
	if b.Mem != nil && !b.sharedMem {
		_ = b.Mem.Close()
	}
}

// Close releases the base's resources and flushes accumulated cycle
// counts into the instance's obs scope (once). An attached shared
// memory is left open: its creator owns the lifetime.
func (b *InstanceBase) Close() error {
	b.flushCycles()
	b.Cfg.Prof.Unregister(b.ProfCell)
	b.ProfCell = nil
	if b.Mem != nil && !b.sharedMem {
		return b.Mem.Close()
	}
	return nil
}

// BeginInvoke opens the invoke span (under the instance's configured
// parent) and points the memory's kernel-work attribution at it, so
// faults taken during the call nest under the call. Engines bracket
// Invoke with BeginInvoke/EndInvoke; the returned span is inert when
// tracing is off, leaving only the counter cost of ObsInvoke.
func (b *InstanceBase) BeginInvoke() obs.Span {
	sp := b.Cfg.Obs.StartSpan(obs.SpanInvoke, b.Cfg.Span)
	if sp.Ref().Valid() {
		b.invokeRef = sp.Ref()
		if b.Mem != nil && !b.sharedMem {
			// A shared memory's span parent is a scenario-wide setting
			// (concurrent workers would race a per-invoke repoint).
			b.Mem.SetSpanParent(sp.Ref())
		}
	}
	return sp
}

// EndInvoke closes what BeginInvoke opened, restores the memory's
// span parent, and records the invocation outcome.
func (b *InstanceBase) EndInvoke(sp obs.Span, err error) {
	if sp.Ref().Valid() {
		b.invokeRef = obs.SpanRef{}
		if b.Mem != nil && !b.sharedMem {
			b.Mem.SetSpanParent(b.Cfg.Span)
		}
	}
	sp.End()
	b.ProfCell.Idle()
	b.ObsInvoke(err)
}

// ObsInvoke records one completed Invoke call: every engine calls it
// on the way out so invocation and trap counts are uniform across
// compiled, tiered and interpreted execution.
func (b *InstanceBase) ObsInvoke(err error) {
	b.obsInvokes.Inc()
	if err == nil {
		return
	}
	var t *trap.Trap
	if errors.As(err, &t) {
		b.obsTraps.Inc()
		if t.Kind == trap.Injected {
			b.obsInjected.Inc()
		}
		b.Cfg.Obs.Emit(obs.EvTrap, int64(t.Kind), 0)
	}
}

// flushCycles publishes CycleCounts as per-class counters under
// cycles/<class>. Deferred to Close because CycleCounts is a plain
// (non-atomic) hot-path accumulator owned by one instance.
func (b *InstanceBase) flushCycles() {
	if b.obsFlushed || !b.Cfg.CountCycles {
		return
	}
	b.obsFlushed = true
	sc := b.Cfg.Obs.Child("cycles")
	for class := isa.OpClass(0); class < isa.NumClasses; class++ {
		if n := b.CycleCounts[class]; n != 0 {
			sc.Counter(class.String()).Add(n)
		}
	}
}

// Memory returns the instance memory (nil if the module has none).
func (b *InstanceBase) Memory() *mem.Memory { return b.Mem }

// Counts returns the accumulated counts, or nil when disabled.
func (b *InstanceBase) Counts() *isa.Counts {
	if !b.Cfg.CountCycles {
		return nil
	}
	return &b.CycleCounts
}

// EnterCall bounds recursion depth; engines call it on every wasm-
// level call and pair it with LeaveCall.
func (b *InstanceBase) EnterCall() {
	b.Depth++
	if b.Depth > b.Cfg.CallDepth {
		trap.Throw(trap.StackOverflow)
	}
}

// LeaveCall unwinds one call level.
func (b *InstanceBase) LeaveCall() { b.Depth-- }

// CheckClass returns the cycle-model class charged per memory access
// for the instance's strategy (software checks only; the virtual-
// memory strategies are free at access time on real hardware).
func (b *InstanceBase) CheckClass() (isa.OpClass, bool) {
	switch b.Cfg.Strategy {
	case mem.Clamp:
		return isa.ClassCheckClamp, true
	case mem.Trap:
		return isa.ClassCheckTrap, true
	default:
		return 0, false
	}
}

// CallHost invokes host function i with the given raw arguments.
// This is the single guest→host funnel for every engine: the
// boundary crossing is counted (instance scope and address-space
// stats) and, under tracing, spanned under the live invoke so
// attribution separates boundary time from guest execution. The span
// closes by defer because host functions trap by panicking (an OOB
// iovec through Mem.Bytes) and the panic unwinds to the engine's
// Invoke recovery.
func (b *InstanceBase) CallHost(i int, args []uint64) (uint64, error) {
	b.obsHostcalls.Inc()
	if b.Cfg.CountCycles {
		// The boundary crossing itself has a cycle-model price
		// (register save/restore + indirect into the host ABI), so
		// the wasi suite's op histograms attribute hostcall cost
		// instead of folding it into plain calls.
		b.CycleCounts[isa.ClassHostcall]++
	}
	if b.Cfg.AS != nil {
		b.Cfg.AS.CountHostcall()
	}
	parent := b.invokeRef
	if !parent.Valid() {
		parent = b.Cfg.Span
	}
	sp := b.Cfg.Obs.StartSpan(obs.SpanHostcall, parent)
	defer sp.End()
	hf := b.HostFuncs[i]
	return hf.Fn(&b.HostCtx, args)
}

// InvokeErr converts a recovered engine panic into an Invoke error.
func InvokeErr(r any) error { return trap.Recover(r) }

// InstantiateMaxAttempts bounds InstantiateWithRetry.
const InstantiateMaxAttempts = 8

// InstantiateWithRetry instantiates cm, retrying with backoff when
// instantiation fails with an injected transient fault (an mmap or
// eager-commit mprotect failure under chaos testing). Permanent
// errors return immediately; a recovery after a transient failure is
// counted against the address space's injector.
func InstantiateWithRetry(cm CompiledModule, cfg Config, imports Imports) (Instance, error) {
	var lastErr error
	for attempt := 0; attempt < InstantiateMaxAttempts; attempt++ {
		if attempt > 0 {
			retryPause(attempt)
		}
		inst, err := cm.Instantiate(cfg, imports)
		if err == nil {
			if lastErr != nil && cfg.AS != nil {
				if site, ok := faultinject.IsTransient(lastErr); ok {
					cfg.AS.Injector().Recovered(site)
				}
			}
			return inst, nil
		}
		if _, ok := faultinject.IsTransient(err); !ok {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("core: instantiation failed after %d attempts: %w",
		InstantiateMaxAttempts, lastErr)
}

// retryPause busy-waits an exponentially growing, capped interval.
// Busy-waiting keeps single-threaded chaos runs replay-deterministic
// (no scheduler round trip).
func retryPause(attempt int) {
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	d := time.Duration(1<<shift) * 250 * time.Nanosecond
	t0 := time.Now()
	for time.Since(t0) < d {
	}
}

// WriteTo is a small helper for engines that expose stdout-style
// diagnostics; unused writers default to io.Discard.
func WriteTo(w io.Writer) io.Writer {
	if w == nil {
		return io.Discard
	}
	return w
}
