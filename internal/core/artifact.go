package core

import (
	"errors"

	"leapsandbounds/internal/wasm"
)

// ErrNoArtifact is returned by ArtifactCodec implementations for
// compiled modules that cannot round-trip through bytes (foreign
// module types, engines whose artifacts are closure graphs with no
// serializable core).
var ErrNoArtifact = errors.New("core: compiled module has no serializable artifact")

// ArtifactCodec is implemented by engines whose compiled artifacts
// can be serialized and rebuilt, enabling an on-disk cache tier that
// multi-process fleets share (wazero's compilation cache is the
// production analog). The codec contract:
//
//   - EncodeArtifact(Compile(m)) followed by DecodeArtifact(m, bytes)
//     on an engine with identical codegen options yields a module
//     observationally identical to Compile(m) — same digests, same
//     trap sites;
//   - the byte format needs no stability across engine-option changes:
//     the cache keys artifacts by (module hash, engine, opts), so a
//     knob change addresses different files;
//   - DecodeArtifact must validate what it reads and fail loudly on
//     malformed input — the disk tier treats a decode error as
//     corruption and falls back to a fresh compile.
type ArtifactCodec interface {
	EncodeArtifact(cm CompiledModule) ([]byte, error)
	DecodeArtifact(m *wasm.Module, data []byte) (CompiledModule, error)
}

// Provenance says where a cache-mediated compiled module came from.
type Provenance int

const (
	// FromCompile: the compile function ran (cold miss everywhere).
	FromCompile Provenance = iota
	// FromMemory: served by the in-process cache (or an in-flight
	// compile another goroutine was already running).
	FromMemory
	// FromDisk: rebuilt from the on-disk artifact tier — no compile
	// ran in this process.
	FromDisk
)

var provenanceNames = [...]string{"compile", "memory", "disk"}

func (p Provenance) String() string {
	if int(p) < len(provenanceNames) {
		return provenanceNames[p]
	}
	return "provenance(?)"
}

// ArtifactCache is a ModuleCache with an optional disk tier behind
// the in-memory one. GetOrCompileArtifact resolves through
// memory → disk → compile, with the whole miss path deduplicated by
// the same singleflight as GetOrCompile; codec may be nil, which
// skips the disk tier for that call.
type ArtifactCache interface {
	ModuleCache
	GetOrCompileArtifact(m *wasm.Module, engine, opts string, codec ArtifactCodec,
		compile func() (CompiledModule, error)) (CompiledModule, Provenance, error)
}
