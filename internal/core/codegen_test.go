package core_test

import (
	"reflect"
	"strings"
	"testing"

	"leapsandbounds/internal/core"
)

// TestCodegenCacheKeyCoversEveryField flips each Codegen field in turn
// (reflectively, so a field added later is covered automatically) and
// requires the cache key to change. A knob that doesn't move the key
// would let artifacts compiled under different codegen alias in the
// module cache.
func TestCodegenCacheKeyCoversEveryField(t *testing.T) {
	base := core.Codegen{}
	baseKey := base.CacheKey()
	v := reflect.ValueOf(&base).Elem()
	t.Logf("zero-value key: %q", baseKey)
	for i := 0; i < v.NumField(); i++ {
		cg := core.Codegen{}
		fv := reflect.ValueOf(&cg).Elem().Field(i)
		name := v.Type().Field(i).Name
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(true)
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(1)
		case reflect.String:
			fv.SetString("x")
		default:
			t.Fatalf("field %s: unhandled kind %v — extend this test and CacheKey", name, fv.Kind())
		}
		if got := cg.CacheKey(); got == baseKey {
			t.Errorf("flipping %s does not change the cache key %q", name, got)
		}
		if !strings.Contains(cg.CacheKey(), name+"=") {
			t.Errorf("cache key %q does not name field %s", cg.CacheKey(), name)
		}
	}
}

// TestCodegenCacheKeyStable pins the canonical encoding: the key is
// the fields in declaration order as name=value pairs. Engines embed
// this string in their module-cache keys, so a silent format change
// invalidates warm caches.
func TestCodegenCacheKeyStable(t *testing.T) {
	cg := core.Codegen{BoundsElision: true, RegisterIR: true}
	want := "BoundsElision=true RegisterIR=true"
	if got := cg.CacheKey(); got != want {
		t.Errorf("CacheKey() = %q, want %q", got, want)
	}
}
