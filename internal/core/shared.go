package core

import (
	"errors"
	"fmt"

	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/wasm"
)

// NewSharedMemory builds a wasm-threads-style shared linear memory
// sized for module m under cfg, for attaching to many instances via
// Config.SharedMem. The limits computation matches what a private
// instantiation of m would produce (module min, module max clamped by
// cfg.MaxPages), so a thread group sees the same geometry a lone
// instance would. The caller owns the memory's lifetime: instances
// attached to it do not close it.
func NewSharedMemory(m *wasm.Module, cfg Config) (*mem.Memory, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	lim, ok := m.MemoryLimits()
	if !ok {
		return nil, errors.New("core: module declares no memory")
	}
	maxPages := cfg.MaxPages
	if lim.HasMax && lim.Max < maxPages {
		maxPages = lim.Max
	}
	if maxPages < lim.Min {
		maxPages = lim.Min
	}
	if maxPages == 0 {
		maxPages = 1
	}
	mm, err := mem.New(mem.Config{
		Strategy:    cfg.Strategy,
		AS:          cfg.AS,
		MinPages:    lim.Min,
		MaxPages:    maxPages,
		Pool:        cfg.Pool,
		DisablePool: cfg.UffdNoPool,
		UffdPoll:    cfg.UffdPoll,
		EagerCommit: cfg.EagerCommit,
		Shared:      true,
		Span:        cfg.Span,
	})
	if err != nil {
		return nil, fmt.Errorf("core: shared memory: %w", err)
	}
	return mm, nil
}
