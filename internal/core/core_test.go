package core_test

import (
	"strings"
	"testing"

	"leapsandbounds/internal/core"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

func module() *wasm.Module {
	return &wasm.Module{
		Types: []wasm.FuncType{{}},
		Mems:  []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 4, HasMax: true}}},
		Globals: []wasm.Global{
			{Type: wasm.GlobalType{Type: wasm.I32, Mutable: true},
				Init: wasm.ConstExpr{Op: wasm.OpI32Const, Value: 7}},
			{Type: wasm.GlobalType{Type: wasm.F64, Mutable: true},
				Init: wasm.ConstExpr{Op: wasm.OpF64Const, Value: 0x4000000000000000}},
		},
		Data: []wasm.DataSegment{
			{Offset: wasm.ConstExpr{Op: wasm.OpI32Const, Value: 16}, Data: []byte("abc")},
		},
	}
}

func cfg() core.Config { return core.Config{Profile: isa.X86_64()} }

func TestInstanceBaseInit(t *testing.T) {
	b, err := core.NewInstanceBase(module(), cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Mem == nil || b.Mem.SizePages() != 1 {
		t.Fatal("memory not initialized")
	}
	if b.Globals[0] != 7 || b.Globals[1] != 0x4000000000000000 {
		t.Errorf("globals %v", b.Globals)
	}
	if got := b.Mem.LoadU8(16); got != 'a' {
		t.Errorf("data segment byte %q", got)
	}
}

func TestDataSegmentOutOfBounds(t *testing.T) {
	m := module()
	m.Data[0].Offset.Value = 65534 // "abc" crosses the 64 KiB end
	if _, err := core.NewInstanceBase(m, cfg(), nil); err == nil {
		t.Error("out-of-bounds data segment accepted")
	}
}

func TestImportResolution(t *testing.T) {
	m := module()
	m.Types = append(m.Types, wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	m.Imports = []wasm.Import{{Module: "env", Name: "f", Kind: wasm.ExternFunc, Func: 1}}

	// Missing import.
	if _, err := core.NewInstanceBase(m, cfg(), nil); err == nil ||
		!strings.Contains(err.Error(), "unknown import") {
		t.Errorf("missing import: %v", err)
	}

	// Signature mismatch.
	bad := core.Imports{"env": {"f": core.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValueType{wasm.F64}, Results: []wasm.ValueType{wasm.I32}},
	}}}
	if _, err := core.NewInstanceBase(m, cfg(), bad); err == nil ||
		!strings.Contains(err.Error(), "type") {
		t.Errorf("mismatched import: %v", err)
	}

	// Correct import.
	good := core.Imports{"env": {"f": core.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}},
		Fn: func(hc *core.HostContext, args []uint64) (uint64, error) {
			return args[0] + 1, nil
		},
	}}}
	b, err := core.NewInstanceBase(m, cfg(), good)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	v, err := b.CallHost(0, []uint64{41})
	if err != nil || v != 42 {
		t.Errorf("host call: %v %v", v, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	// Uffd without a pool must still instantiate (pool defaulted).
	c := core.Config{Profile: isa.X86_64(), Strategy: mem.Uffd}
	b, err := core.NewInstanceBase(module(), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Missing profile is an error.
	if _, err := core.NewInstanceBase(module(), core.Config{}, nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestDefaultPoolSharedAcrossInstances(t *testing.T) {
	// Regression: the defaulted uffd arena pool must be one pool per
	// address space, not one per instantiation — otherwise sequential
	// instances each mmap a fresh arena and recycling never happens
	// (the serverless pattern the uffd strategy exists to serve).
	as := vmm.New(isa.X86_64().VM)
	c := core.Config{Profile: isa.X86_64(), Strategy: mem.Uffd, AS: as}
	for i := 0; i < 3; i++ {
		b, err := core.NewInstanceBase(module(), c, nil)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		b.Mem.StoreU8(0, 0xAB) // commit a page so recycling has work
		if err := b.Close(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	ps := mem.SharedPool(as).Stats()
	if ps.Created != 1 {
		t.Errorf("arenas created = %d, want 1 (fresh pool per instantiation?)", ps.Created)
	}
	if ps.Reused != 2 {
		t.Errorf("arenas reused = %d, want 2", ps.Reused)
	}
	if ps.Returned != 3 {
		t.Errorf("arenas returned = %d, want 3", ps.Returned)
	}
}

func TestMemoryCapRespectsModuleMax(t *testing.T) {
	b, err := core.NewInstanceBase(module(), cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.Mem.Grow(10); got != -1 {
		t.Errorf("grow past module max returned %d", got)
	}
	if got := b.Mem.Grow(3); got != 1 {
		t.Errorf("grow to module max returned %d", got)
	}
}

func TestCheckClass(t *testing.T) {
	for _, tc := range []struct {
		s  mem.Strategy
		on bool
	}{
		{mem.None, false}, {mem.Clamp, true}, {mem.Trap, true},
		{mem.Mprotect, false}, {mem.Uffd, false},
	} {
		c := cfg()
		c.Strategy = tc.s
		b, err := core.NewInstanceBase(module(), c, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, on := b.CheckClass(); on != tc.on {
			t.Errorf("%v: software-check class on=%v, want %v", tc.s, on, tc.on)
		}
		b.Close()
	}
}

func TestTableInit(t *testing.T) {
	m := module()
	m.Types = append(m.Types, wasm.FuncType{})
	m.Funcs = []uint32{0}
	m.Code = []wasm.Code{{Body: []wasm.Instr{{Op: wasm.OpEnd}}}}
	m.Tables = []wasm.TableType{{Elem: wasm.Funcref, Limits: wasm.Limits{Min: 3}}}
	m.Elems = []wasm.ElemSegment{{
		Offset: wasm.ConstExpr{Op: wasm.OpI32Const, Value: 1},
		Funcs:  []uint32{0},
	}}
	b, err := core.NewInstanceBase(m, cfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Filled[0] || !b.Filled[1] || b.Filled[2] {
		t.Errorf("table fill pattern %v", b.Filled)
	}
	if b.Table[1] != 0 {
		t.Errorf("table[1] = %d", b.Table[1])
	}

	// Out-of-bounds element segment.
	m.Elems[0].Offset.Value = 3
	if _, err := core.NewInstanceBase(m, cfg(), nil); err == nil {
		t.Error("out-of-bounds elem segment accepted")
	}
}
