package core_test

import (
	"errors"
	"testing"

	"leapsandbounds/gen"
	"leapsandbounds/internal/compiled"
	"leapsandbounds/internal/core"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/wasm"
)

// templateModule builds a small handler-shaped module: "init" fills a
// working set and sets a global (the warm-up), "get" reads back cell
// i plus the global, "set" writes a cell, "grow"/"size" exercise the
// grow state, all over a 1..8 page memory. salt makes each test's
// module content-distinct so module-cache warm starts never couple
// tests.
func templateModule(t *testing.T, salt int64) *wasm.Module {
	t.Helper()
	mb := gen.NewModule()
	mb.Memory(1, 8)
	g := mb.GlobalI64(0)

	init := mb.Func("init")
	i := init.LocalI32("i")
	init.Body(
		gen.For(i, gen.I32(0), gen.I32(1024),
			gen.StoreI64(gen.Mul(gen.Get(i), gen.I32(8)), 0,
				gen.Mul(gen.I64FromI32(gen.Get(i)), gen.I64(salt))),
		),
		gen.SetG(g, gen.I64(salt)),
	)
	mb.Export("init", init)

	get := mb.Func("get", gen.I64Type)
	p := get.ParamI32("i")
	get.Body(gen.Return(gen.Add(
		gen.LoadI64(gen.Mul(gen.Get(p), gen.I32(8)), 0), gen.GetG(g))))
	mb.Export("get", get)

	set := mb.Func("set")
	si := set.ParamI32("i")
	sv := set.ParamI64("v")
	set.Body(gen.StoreI64(gen.Mul(gen.Get(si), gen.I32(8)), 0, gen.Get(sv)))
	mb.Export("set", set)

	grow := mb.Func("grow", gen.I32Type)
	grow.Body(gen.Return(gen.MemGrow(gen.I32(1))))
	mb.Export("grow", grow)

	size := mb.Func("size", gen.I32Type)
	size.Body(gen.Return(gen.MemSize()))
	mb.Export("size", size)

	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func warmInit(inst core.Instance) error {
	_, err := inst.Invoke("init")
	return err
}

func TestTemplateForkAllStrategies(t *testing.T) {
	const salt = 3
	eng := compiled.NewWAVM()
	for _, s := range mem.Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			cm, err := eng.Compile(templateModule(t, salt))
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Config{Profile: isa.X86_64(), Strategy: s}
			tpl, err := core.NewTemplate(cm, cfg, nil, warmInit)
			if err != nil {
				t.Fatal(err)
			}
			if !tpl.CanFork() {
				t.Fatal("compiled engine template cannot fork")
			}
			fork, err := tpl.Fork()
			if err != nil {
				t.Fatal(err)
			}
			defer fork.Close()
			// The fork sees the warmed state without running init.
			for _, i := range []uint64{0, 5, 511, 1023} {
				res, err := fork.Invoke("get", i)
				if err != nil {
					t.Fatal(err)
				}
				want := uint64(int64(i)*salt + salt)
				if res[0] != want {
					t.Fatalf("fork get(%d) = %d, want %d", i, res[0], want)
				}
			}
			// A fresh (unwarmed) instance does not.
			fresh, err := cm.Instantiate(tpl.Config(), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer fresh.Close()
			if res, _ := fresh.Invoke("get", uint64(5)); res[0] != 0 {
				t.Fatalf("fresh get(5) = %d, want 0", res[0])
			}
			// Sibling forks are isolated.
			fork2, err := tpl.Fork()
			if err != nil {
				t.Fatal(err)
			}
			defer fork2.Close()
			if _, err := fork.Invoke("set", uint64(5), uint64(999)); err != nil {
				t.Fatal(err)
			}
			if res, _ := fork2.Invoke("get", uint64(5)); res[0] != 5*salt+salt {
				t.Fatalf("fork2 saw sibling write: %d", res[0])
			}
		})
	}
}

func TestTemplateCapturesGrowState(t *testing.T) {
	eng := compiled.NewWAVM()
	cm, err := eng.Compile(templateModule(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Profile: isa.X86_64(), Strategy: mem.Mprotect}
	tpl, err := core.NewTemplate(cm, cfg, nil, func(inst core.Instance) error {
		if err := warmInit(inst); err != nil {
			return err
		}
		res, err := inst.Invoke("grow")
		if err != nil {
			return err
		}
		if int32(res[0]) < 0 {
			return errors.New("grow failed")
		}
		// Write into the grown page so the fork must see it.
		_, err = inst.Invoke("set", uint64(8500), uint64(0xbeef))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	fork, err := tpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()
	if res, _ := fork.Invoke("size"); res[0] != 2 {
		t.Fatalf("fork size = %d pages, want 2 (template grew)", res[0])
	}
	if res, _ := fork.Invoke("get", uint64(8500)); res[0] != 0xbeef+7 {
		t.Fatalf("fork lost grown-page write: %#x", res[0])
	}
	// Forks keep growing independently from the template's size.
	if res, _ := fork.Invoke("grow"); int32(res[0]) != 2 {
		t.Fatalf("fork grow returned %d, want previous size 2", int32(res[0]))
	}
}

func TestTemplateForkWithHostImports(t *testing.T) {
	// Imports are re-resolved per fork: each fork gets its own host
	// closure state.
	mb := gen.NewModule()
	mb.Memory(1, 2)
	tick := mb.ImportFunc("env", "tick", nil, []wasm.ValueType{wasm.I64})
	f := mb.Func("run", gen.I64Type)
	f.Body(gen.Return(gen.Call(tick)))
	mb.Export("run", f)
	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	eng := compiled.NewWAVM()
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	counter := uint64(100)
	imports := core.Imports{"env": {"tick": core.HostFunc{
		Type: wasm.FuncType{Results: []wasm.ValueType{wasm.I64}},
		Fn: func(hc *core.HostContext, args []uint64) (uint64, error) {
			counter++
			return counter, nil
		},
	}}}
	cfg := core.Config{Profile: isa.X86_64(), Strategy: mem.Trap}
	tpl, err := core.NewTemplate(cm, cfg, imports, nil)
	if err != nil {
		t.Fatal(err)
	}
	fork, err := tpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer fork.Close()
	if res, _ := fork.Invoke("run"); res[0] != 101 {
		t.Fatalf("host import not wired through fork: %d", res[0])
	}
}

// fakeModule's instances cannot snapshot; Template must degrade to
// fresh instantiation + re-warm.
type fakeModule struct{ instantiated int }

type fakeInstance struct {
	mod    *fakeModule
	warmed bool
}

func (f *fakeModule) Instantiate(cfg core.Config, imports core.Imports) (core.Instance, error) {
	f.instantiated++
	return &fakeInstance{mod: f}, nil
}

func (f *fakeInstance) Invoke(name string, args ...uint64) ([]uint64, error) {
	if name == "init" {
		f.warmed = true
	}
	return nil, nil
}
func (f *fakeInstance) Memory() *mem.Memory { return nil }
func (f *fakeInstance) Counts() *isa.Counts { return nil }
func (f *fakeInstance) Close() error        { return nil }

func TestTemplateFallbackWithoutSnapshotSupport(t *testing.T) {
	fm := &fakeModule{}
	tpl, err := core.NewTemplate(fm, core.Config{Profile: isa.X86_64()}, nil,
		func(inst core.Instance) error { _, err := inst.Invoke("init"); return err })
	if err != nil {
		t.Fatal(err)
	}
	if tpl.CanFork() {
		t.Fatal("fake module claims fork support")
	}
	inst, err := tpl.Fork()
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	fi := inst.(*fakeInstance)
	if !fi.warmed {
		t.Error("fallback fork skipped the warm-up")
	}
	if fm.instantiated != 2 {
		t.Errorf("instantiations = %d, want 2 (donor + fallback fork)", fm.instantiated)
	}
}

func TestSnapshotModuleMismatch(t *testing.T) {
	// A snapshot without memory cannot restore into a module that
	// declares one.
	if _, err := core.NewInstanceBaseFromSnapshot(module(), cfg(), nil,
		&core.StateSnapshot{}); err == nil {
		t.Error("memoryless snapshot accepted for module with memory")
	}
	if _, err := core.NewInstanceBaseFromSnapshot(module(), cfg(), nil, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestForkDefaultPoolShared is the fork-side companion of
// TestDefaultPoolSharedAcrossInstances: uffd forks borrow arenas from
// the address space's one shared pool — never a private pool, never a
// fresh mmap per fork.
func TestForkDefaultPoolShared(t *testing.T) {
	eng := compiled.NewWAVM()
	cm, err := eng.Compile(templateModule(t, 11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Profile: isa.X86_64(), Strategy: mem.Uffd}
	tpl, err := core.NewTemplate(cm, cfg, nil, warmInit)
	if err != nil {
		t.Fatal(err)
	}
	as := tpl.Config().AS
	base := as.Snapshot().MmapCalls
	for i := 0; i < 3; i++ {
		fork, err := tpl.Fork()
		if err != nil {
			t.Fatalf("fork %d: %v", i, err)
		}
		if res, _ := fork.Invoke("get", uint64(9)); res[0] != 9*11+11 {
			t.Fatalf("fork %d content: %d", i, res[0])
		}
		if err := fork.Close(); err != nil {
			t.Fatal(err)
		}
	}
	ps := mem.SharedPool(as).Stats()
	if ps.Created != 1 {
		t.Errorf("arenas created = %d, want 1 (forks minting private arenas?)", ps.Created)
	}
	if ps.Reused < 3 {
		t.Errorf("arenas reused = %d, want >= 3", ps.Reused)
	}
	// Steady-state forks perform zero mmap syscalls: the whole point.
	if got := as.Snapshot().MmapCalls - base; got != 0 {
		t.Errorf("forks performed %d mmap calls, want 0", got)
	}
}
