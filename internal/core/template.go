// Template instances: instantiate once, warm, snapshot, fork.
//
// A serverless host instantiates the same module millions of times;
// the paper's worst case is exactly that churn serializing on the
// mmap lock. A Template amortizes it: one donor instance runs the
// warm-up invoke, its full state (linear memory image, globals,
// table) is frozen into a StateSnapshot, and every subsequent request
// is served by Fork — a copy-on-write re-map of the template's pages
// through internal/vmm, with compiled code reused via the module
// cache so forks never recompile.
package core

import (
	"errors"
	"fmt"
	"slices"

	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/obs"
	"leapsandbounds/internal/wasm"
)

// StateSnapshot is the frozen state of one warmed instance: the
// memory image (nil when the module declares no memory) plus globals
// and table. It is immutable and safe to share across any number of
// concurrent forks, independent of the donor's lifetime.
type StateSnapshot struct {
	Mem     *mem.Snapshot
	Globals []uint64
	Table   []uint32
	Filled  []bool
}

// Snapshotter is implemented by instances whose state can be frozen
// into a StateSnapshot (both closure-compiled and interpreted
// instances, via InstanceBase).
type Snapshotter interface {
	Snapshot() (*StateSnapshot, error)
}

// SnapshotInstantiator is implemented by compiled modules that can
// instantiate directly from a snapshot, skipping data segments and
// the start function (their effects are baked into the image).
type SnapshotInstantiator interface {
	InstantiateSnapshot(cfg Config, imports Imports, snap *StateSnapshot) (Instance, error)
}

// Snapshot freezes the base's state. The memory image is copied, so
// the donor may keep running (or close) without affecting forks.
func (b *InstanceBase) Snapshot() (*StateSnapshot, error) {
	sp := b.Cfg.Obs.StartSpan(obs.SpanSnapshot, b.Cfg.Span)
	defer sp.End()
	snap := &StateSnapshot{
		Globals: slices.Clone(b.Globals),
		Table:   slices.Clone(b.Table),
		Filled:  slices.Clone(b.Filled),
	}
	if b.Mem != nil {
		ms, err := b.Mem.Snapshot()
		if err != nil {
			return nil, err
		}
		snap.Mem = ms
	}
	return snap, nil
}

// NewInstanceBaseFromSnapshot is the fork-side counterpart of
// NewInstanceBase: imports are re-resolved (host functions are
// per-instance), the memory forks from the snapshot through the
// strategy's copy-on-write machinery, and globals/table are restored
// by value. Data segments, element segments and the start function
// are deliberately skipped — the snapshot already contains their
// effects plus whatever the warm-up invoke did on top.
func NewInstanceBaseFromSnapshot(m *wasm.Module, cfg Config, imports Imports, snap *StateSnapshot) (*InstanceBase, error) {
	if snap == nil {
		return nil, errors.New("core: nil state snapshot")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	b := &InstanceBase{
		Module:       m,
		Cfg:          cfg,
		obsInvokes:   cfg.Obs.Counter("invokes"),
		obsTraps:     cfg.Obs.Counter("traps"),
		obsInjected:  cfg.Obs.Counter("injected_traps"),
		obsHostcalls: cfg.Obs.Counter("hostcalls"),
	}
	forkSpan := cfg.Obs.StartSpan(obs.SpanFork, cfg.Span)
	defer forkSpan.End()

	for _, im := range m.Imports {
		switch im.Kind {
		case wasm.ExternFunc:
			ft := m.Types[im.Func]
			hf, err := imports.Resolve(im.Module, im.Name, ft)
			if err != nil {
				return nil, err
			}
			b.HostFuncs = append(b.HostFuncs, hf)
		case wasm.ExternMemory, wasm.ExternTable, wasm.ExternGlobal:
			return nil, fmt.Errorf("core: %v imports are not supported (import %q.%q)",
				im.Kind, im.Module, im.Name)
		}
	}

	if _, hasMem := m.MemoryLimits(); hasMem != (snap.Mem != nil) {
		return nil, errors.New("core: snapshot memory does not match module declaration")
	}
	if snap.Mem != nil {
		memParent := cfg.Span
		if forkSpan.Ref().Valid() {
			memParent = forkSpan.Ref()
		}
		mm, err := mem.NewFromSnapshot(mem.Config{
			Strategy:    cfg.Strategy,
			AS:          cfg.AS,
			Pool:        cfg.Pool,
			DisablePool: cfg.UffdNoPool,
			UffdPoll:    cfg.UffdPoll,
			EagerCommit: cfg.EagerCommit,
			Span:        memParent,
		}, snap.Mem)
		if err != nil {
			return nil, err
		}
		b.Mem = mm
	}
	b.HostCtx = HostContext{
		Mem:    b.Mem,
		views:  cfg.Obs.Counter("hostview_acquires"),
		revals: cfg.Obs.Counter("hostview_revalidations"),
	}
	b.Globals = slices.Clone(snap.Globals)
	b.Table = slices.Clone(snap.Table)
	b.Filled = slices.Clone(snap.Filled)
	if b.Mem != nil {
		b.Mem.SetSpanParent(cfg.Span)
	}
	return b, nil
}

// Template is a warmed, frozen instance of a compiled module that
// serves forks. Safe for concurrent Fork calls: all state is
// immutable after NewTemplate returns.
type Template struct {
	mod     CompiledModule
	cfg     Config
	imports Imports
	snap    *StateSnapshot
	warm    func(Instance) error
}

// NewTemplate instantiates cm once under cfg, runs the warm function
// on the donor (typically an init invoke that faults in the working
// set), snapshots its state, and closes the donor. The config is
// normalized once here so every fork shares the template's address
// space and arena pool.
//
// A nil warm function snapshots the freshly-instantiated state (data
// segments applied, start function run) — still useful, as forks
// skip instantiation's segment writes and, for the virtual-memory
// strategies, defer page duplication to first access.
func NewTemplate(cm CompiledModule, cfg Config, imports Imports, warm func(Instance) error) (*Template, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.SharedMem != nil {
		// A shared memory has racing writers; freezing it mid-traffic
		// would tear, and a fork of one thread of a thread group is not
		// a meaningful isolate. Refuse up front — even for engines
		// without snapshot support, whose degraded fork path would
		// otherwise hand every "fork" the same live memory.
		return nil, errors.New("core: cannot build a template from a shared-memory instance")
	}
	t := &Template{mod: cm, cfg: cfg, imports: imports, warm: warm}
	inst, err := InstantiateWithRetry(cm, cfg, imports)
	if err != nil {
		return nil, fmt.Errorf("core: template instantiation: %w", err)
	}
	defer inst.Close()
	if warm != nil {
		if err := warm(inst); err != nil {
			return nil, fmt.Errorf("core: template warm-up: %w", err)
		}
	}
	if s, ok := inst.(Snapshotter); ok {
		snap, err := s.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("core: template snapshot: %w", err)
		}
		t.snap = snap
	}
	return t, nil
}

// CanFork reports whether forks take the snapshot fast path. False
// means the engine cannot snapshot or restore, and Fork degrades to
// fresh instantiation plus a re-run of the warm function.
func (t *Template) CanFork() bool {
	if t.snap == nil {
		return false
	}
	_, ok := t.mod.(SnapshotInstantiator)
	return ok
}

// Snapshot exposes the frozen state (nil when the engine could not
// snapshot).
func (t *Template) Snapshot() *StateSnapshot { return t.snap }

// Config returns the template's normalized configuration.
func (t *Template) Config() Config { return t.cfg }

// Fork creates one instance from the template under its own
// configuration — the common serving path.
func (t *Template) Fork() (Instance, error) { return t.ForkWith(t.cfg) }

// ForkWith creates one instance from the template under cfg (callers
// typically repoint Config.Span per request, or fork into a different
// strategy for ablations). A nil Profile or AS inherits the
// template's, so forks land in the same simulated process by default.
func (t *Template) ForkWith(cfg Config) (Instance, error) {
	if cfg.Profile == nil {
		cfg.Profile = t.cfg.Profile
	}
	if cfg.AS == nil {
		cfg.AS = t.cfg.AS
	}
	if si, ok := t.mod.(SnapshotInstantiator); ok && t.snap != nil {
		return si.InstantiateSnapshot(cfg, t.imports, t.snap)
	}
	// Degraded path: engines without snapshot support serve cold
	// instances, re-running the warm-up per fork. Semantically
	// identical, none of the latency win.
	inst, err := InstantiateWithRetry(t.mod, cfg, t.imports)
	if err != nil {
		return nil, err
	}
	if t.warm != nil {
		if err := t.warm(inst); err != nil {
			_ = inst.Close()
			return nil, err
		}
	}
	return inst, nil
}
