package core_test

import (
	"strings"
	"sync"
	"testing"

	"leapsandbounds/gen"
	"leapsandbounds/internal/compiled"
	"leapsandbounds/internal/core"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/vmm"
	"leapsandbounds/internal/wasm"
)

// sharedModule: "set"/"get" over a 1..8 page memory, plus "grow".
// No data segments, so re-instantiation does not clobber the shared
// state the cross-instance tests assert on.
func sharedModule(t *testing.T) *wasm.Module {
	t.Helper()
	mb := gen.NewModule()
	mb.Memory(1, 8)
	set := mb.Func("set")
	si := set.ParamI32("i")
	sv := set.ParamI64("v")
	set.Body(gen.StoreI64(gen.Mul(gen.Get(si), gen.I32(8)), 0, gen.Get(sv)))
	mb.Export("set", set)
	get := mb.Func("get", gen.I64Type)
	p := get.ParamI32("i")
	get.Body(gen.Return(gen.LoadI64(gen.Mul(gen.Get(p), gen.I32(8)), 0)))
	mb.Export("get", get)
	grow := mb.Func("grow", gen.I32Type)
	grow.Body(gen.Return(gen.MemGrow(gen.I32(1))))
	mb.Export("grow", grow)
	size := mb.Func("size", gen.I32Type)
	size.Body(gen.Return(gen.MemSize()))
	mb.Export("size", size)
	m, err := mb.Module()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSharedForkRefusal pins the fork interaction for every strategy:
// a template (and thus Fork) over a shared-memory config must refuse
// cleanly — a fork of one thread of a thread group is not an isolate,
// and the degraded fork path would hand every "fork" the same live
// memory.
func TestSharedForkRefusal(t *testing.T) {
	eng := compiled.NewWAVM()
	m := sharedModule(t)
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mem.Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			cfg := core.Config{Profile: isa.X86_64(), Strategy: s}
			shm, err := core.NewSharedMemory(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer shm.Close()
			cfg.SharedMem = shm
			if _, err := core.NewTemplate(cm, cfg, nil, nil); err == nil {
				t.Fatal("NewTemplate accepted a shared-memory config")
			} else if !strings.Contains(err.Error(), "shared") {
				t.Fatalf("refusal does not name the cause: %v", err)
			}
			// The memory must still be usable after the refusal.
			inst, err := core.InstantiateWithRetry(cm, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			if _, err := inst.Invoke("set", 1, 42); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSharedAttachValidation: the attach path rejects memories that
// are not shared or whose strategy differs from the instance's.
func TestSharedAttachValidation(t *testing.T) {
	eng := compiled.NewWAVM()
	m := sharedModule(t)
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Profile: isa.X86_64(), Strategy: mem.Trap}
	shm, err := core.NewSharedMemory(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shm.Close()

	bad := cfg
	bad.Strategy = mem.Clamp
	bad.SharedMem = shm
	if _, err := cm.Instantiate(bad, nil); err == nil {
		t.Fatal("strategy mismatch accepted")
	}

	priv, err := mem.New(mem.Config{Strategy: mem.Trap, AS: vmm.New(isa.X86_64().VM), MinPages: 1, MaxPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer priv.Close()
	bad = cfg
	bad.SharedMem = priv
	if _, err := cm.Instantiate(bad, nil); err == nil {
		t.Fatal("non-shared memory accepted")
	}
}

// TestSharedCrossInstanceVisibility: writes through one instance are
// visible through every sibling, and a grow through one is observed
// by all (same memory, same length publication) — per strategy.
func TestSharedCrossInstanceVisibility(t *testing.T) {
	eng := compiled.NewWAVM()
	m := sharedModule(t)
	cm, err := eng.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range mem.Strategies() {
		t.Run(s.String(), func(t *testing.T) {
			cfg := core.Config{Profile: isa.X86_64(), Strategy: s}
			shm, err := core.NewSharedMemory(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer shm.Close()
			cfg.SharedMem = shm

			const workers = 4
			insts := make([]core.Instance, workers)
			for i := range insts {
				inst, err := core.InstantiateWithRetry(cm, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer inst.Close()
				insts[i] = inst
			}

			// Concurrent disjoint writes, one lane per instance.
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 64; i++ {
						cell := uint64(w*64 + i)
						if _, err := insts[w].Invoke("set", cell, uint64(w)<<32|uint64(i)); err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			// Every instance reads every lane.
			for r := 0; r < workers; r++ {
				for w := 0; w < workers; w++ {
					cell := uint64(w*64 + 17)
					out, err := insts[r].Invoke("get", cell)
					if err != nil {
						t.Fatal(err)
					}
					if want := uint64(w)<<32 | 17; out[0] != want {
						t.Fatalf("reader %d lane %d: %#x, want %#x", r, w, out[0], want)
					}
				}
			}
			// Grow through instance 0, observe through instance 3.
			out, err := insts[0].Invoke("grow")
			if err != nil {
				t.Fatal(err)
			}
			if int32(out[0]) != 1 {
				t.Fatalf("grow returned %d, want old size 1", int32(out[0]))
			}
			out, err = insts[workers-1].Invoke("size")
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != 2 {
				t.Fatalf("sibling sees size %d, want 2", out[0])
			}
		})
	}
}
