// Host-boundary memory views. A host function that needs guest
// memory must not index the linear memory unchecked: the window it
// was handed is only as valid as the bounds check that produced it,
// and the guest can call memory.grow from a re-entrant hostcall (or,
// with shared memories, a sibling thread) while the host still holds
// the window — the embedder-API hazard "Not So Fast" flags and the
// wazero-style runtimes guard with view revalidation.
//
// HostMemView packages that discipline. Acquiring a view performs one
// bulk bounds check (trapping out-of-bounds under every strategy,
// like memory.copy) and records the memory's grow generation. The
// flat strategies (none/clamp/trap) take an eager copy — the copying
// embedder boundary, where host I/O never touches guest pages
// directly and writes land in one validated Commit. The virtual-
// memory strategies (mprotect/uffd) hand out the live window: the
// bulk check already committed the pages through the fault machinery,
// so the host reads and writes guest memory in place and Commit is
// free. Every Data access compares generations and revalidates after
// a grow, so the five strategies pay their boundary costs exactly
// where the real runtimes do.
package core

import (
	"leapsandbounds/internal/mem"
	"leapsandbounds/internal/obs"
)

// HostMemView is a bounds-checked window over guest memory held by a
// host function for the duration of one hostcall. Not safe for
// concurrent use; acquire one per call.
type HostMemView struct {
	m     *mem.Memory
	addr  uint64
	n     uint64
	write bool
	// gen is the grow generation the current window was validated
	// against.
	gen uint64
	// live is the direct window (virtual-memory strategies).
	live []byte
	// copyBuf is the eager copy (flat strategies); writes land back
	// in guest memory at Commit.
	copyBuf []byte
	revals  int
	revalC  *obs.Counter
}

// eagerCopyBoundary reports whether the strategy's host boundary
// copies (flat strategies) rather than pinning live pages (the
// virtual-memory strategies, whose bulk check faults the pages in).
func eagerCopyBoundary(s mem.Strategy) bool {
	switch s {
	case mem.Mprotect, mem.Uffd:
		return false
	default:
		return true
	}
}

// View acquires a host-boundary window over [addr, addr+n). Traps
// (panics with *trap.Trap) when the range is out of bounds — under
// every strategy, the wasm bulk-operation semantics. n == 0 returns
// an empty but still range-checked view.
func (hc *HostContext) View(addr, n uint64, write bool) *HostMemView {
	if hc.views != nil {
		hc.views.Inc()
	}
	v := &HostMemView{
		m:      hc.Mem,
		addr:   addr,
		n:      n,
		write:  write,
		revalC: hc.revals,
	}
	v.acquire(true)
	return v
}

// acquire (re)validates the range and materializes the window.
// snapshot selects whether an eager-copy view re-reads guest content:
// true on first acquisition (so Commit is a read-modify-write of the
// window and bytes the host never touched round-trip unchanged), and
// on revalidation only for read views — a write view's buffer is the
// host's pending output and must survive the grow.
func (v *HostMemView) acquire(snapshot bool) {
	v.gen = v.m.Generation()
	b := v.m.Bytes(v.addr, v.n, v.write)
	if !eagerCopyBoundary(v.m.Strategy()) {
		v.live = b
		return
	}
	if v.copyBuf == nil {
		v.copyBuf = make([]byte, v.n)
		snapshot = true
	}
	if snapshot {
		copy(v.copyBuf, b)
	}
}

// Data returns the window's bytes, revalidating first if the guest
// grew memory since the last validation. The returned slice is valid
// until the next Data/Revalidate/Commit call.
func (v *HostMemView) Data() []byte {
	if v.m.Generation() != v.gen {
		v.Revalidate()
	}
	if v.copyBuf != nil {
		return v.copyBuf
	}
	return v.live
}

// Revalidate re-checks the window against the current memory bounds
// and re-acquires it. Called automatically by Data on a generation
// mismatch; a grow can only extend memory, so an in-bounds window
// stays in bounds, but the virtual-memory strategies must re-take
// the live slice (the backing window is owned by the bounds check
// that produced it) and the check cost is the point being measured.
func (v *HostMemView) Revalidate() {
	v.revals++
	if v.revalC != nil {
		v.revalC.Inc()
	}
	v.acquire(!v.write)
}

// Commit writes an eager-copy view's bytes back into guest memory
// through a fresh bounds check. No-op for read views and for the
// live-window strategies (their writes already landed).
func (v *HostMemView) Commit() {
	if !v.write || v.copyBuf == nil {
		return
	}
	v.m.WriteAt(v.addr, v.copyBuf)
	v.gen = v.m.Generation()
}

// Len returns the window length.
func (v *HostMemView) Len() uint64 { return v.n }

// Revalidations returns how many times the view was revalidated
// after a mid-hostcall grow (test and attribution hook).
func (v *HostMemView) Revalidations() int { return v.revals }
