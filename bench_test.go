// Benchmarks regenerating the paper's tables and figures through
// testing.B. Each BenchmarkFigN corresponds to one figure of the
// evaluation (see DESIGN.md §5 and EXPERIMENTS.md); cmd/leapsbench
// produces the full-size tables, these benches give the same series
// in -bench form with vm statistics attached as custom metrics.
package leaps_test

import (
	"fmt"
	"testing"

	leaps "leapsandbounds"
	"leapsandbounds/internal/compiled"
	"leapsandbounds/internal/core"
	"leapsandbounds/internal/isa"
	"leapsandbounds/internal/mem"
)

// benchWorkloads is the representative subset used by the benches
// (the full set runs via cmd/leapsbench).
var benchWorkloads = []string{"gemm", "atax", "cholesky", "jacobi-2d", "505.mcf", "557.xz"}

// runIsolates executes instance-per-iteration (the paper's isolate
// churn) on a shared simulated process and reports vm metrics.
func runIsolates(b *testing.B, engine string, strategy leaps.Strategy, workload string, profile *leaps.Profile) {
	b.Helper()
	wl, err := leaps.WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	module, _ := wl.Build(leaps.SizeTest)
	eng, closeEng, err := leaps.NewEngine(engine)
	if err != nil {
		b.Fatal(err)
	}
	defer closeEng()
	cm, err := eng.Compile(module)
	if err != nil {
		b.Fatal(err)
	}
	proc := leaps.NewProcess(profile)
	defer proc.Close()
	cfg := proc.Config(strategy)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := cm.Instantiate(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inst.Invoke("run"); err != nil {
			b.Fatal(err)
		}
		inst.Close()
	}
	b.StopTimer()
	vm := proc.VMStats()
	if n := int64(b.N); n > 0 {
		b.ReportMetric(float64(vm.MprotectCalls)/float64(n), "mprotect/op")
		b.ReportMetric(float64(vm.UffdFaults)/float64(n), "uffdfaults/op")
		b.ReportMetric(float64(vm.LockWaitNs)/float64(n), "lockwait-ns/op")
	}
}

// BenchmarkFig1_BoundsCheckCost regenerates Figure 1's axis: the
// default (mprotect) strategy against no checks, per benchmark, on
// the V8 analog.
func BenchmarkFig1_BoundsCheckCost(b *testing.B) {
	for _, wl := range benchWorkloads {
		for _, s := range []leaps.Strategy{leaps.None, leaps.Mprotect} {
			b.Run(fmt.Sprintf("%s/%v", wl, s), func(b *testing.B) {
				runIsolates(b, leaps.EngineV8, s, wl, leaps.ProfileX86())
			})
		}
	}
}

// BenchmarkFig2_EngineStrategyMatrix regenerates Figure 2's matrix
// on a representative kernel: every engine × strategy, plus the
// native baseline.
func BenchmarkFig2_EngineStrategyMatrix(b *testing.B) {
	b.Run("native", func(b *testing.B) {
		wl, err := leaps.WorkloadByName("gemm")
		if err != nil {
			b.Fatal(err)
		}
		_, native := wl.Build(leaps.SizeTest)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			native()
		}
	})
	for _, engine := range []string{leaps.EngineWAVM, leaps.EngineWasmtime, leaps.EngineV8} {
		for _, s := range leaps.Strategies() {
			b.Run(fmt.Sprintf("%s/%v", engine, s), func(b *testing.B) {
				runIsolates(b, engine, s, "gemm", leaps.ProfileX86())
			})
		}
	}
	b.Run("wasm3/trap", func(b *testing.B) {
		runIsolates(b, leaps.EngineWasm3, leaps.Trap, "gemm", leaps.ProfileX86())
	})
}

// BenchmarkFig2_ISAs regenerates Figure 2's ISA axis: the same
// engine × strategy on each hardware profile (the VM-subsystem
// parameters differ; the cycle model is exercised by the harness).
func BenchmarkFig2_ISAs(b *testing.B) {
	for _, prof := range leaps.Profiles() {
		for _, s := range []leaps.Strategy{leaps.None, leaps.Trap, leaps.Mprotect, leaps.Uffd} {
			b.Run(fmt.Sprintf("%s/%v", prof.Name, s), func(b *testing.B) {
				runIsolates(b, leaps.EngineWAVM, s, "atax", prof)
			})
		}
	}
}

// BenchmarkFig3_Scaling regenerates Figure 3's thread axis: parallel
// isolate churn under mprotect vs uffd.
func BenchmarkFig3_Scaling(b *testing.B) {
	wl, err := leaps.WorkloadByName("jacobi-1d")
	if err != nil {
		b.Fatal(err)
	}
	module, _ := wl.Build(leaps.SizeTest)
	for _, threads := range []int{1, 4} {
		for _, s := range []leaps.Strategy{leaps.Mprotect, leaps.Uffd} {
			b.Run(fmt.Sprintf("threads=%d/%v", threads, s), func(b *testing.B) {
				eng, closeEng, err := leaps.NewEngine(leaps.EngineWasmtime)
				if err != nil {
					b.Fatal(err)
				}
				defer closeEng()
				cm, err := eng.Compile(module)
				if err != nil {
					b.Fatal(err)
				}
				proc := leaps.NewProcess(leaps.ProfileX86())
				defer proc.Close()
				cfg := proc.Config(s)
				b.SetParallelism(threads)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						inst, err := cm.Instantiate(cfg, nil)
						if err != nil {
							b.Error(err)
							return
						}
						if _, err := inst.Invoke("run"); err != nil {
							b.Error(err)
							return
						}
						inst.Close()
					}
				})
				b.StopTimer()
				vm := proc.VMStats()
				b.ReportMetric(float64(vm.LockWaitNs)/float64(b.N), "lockwait-ns/op")
				b.ReportMetric(float64(vm.LockContended)/float64(b.N), "contended/op")
			})
		}
	}
}

// BenchmarkFig6_MemoryTHP regenerates Figure 6's mechanism: resident
// memory under x86-style (1 GiB) vs Arm-style (2 MiB) transparent
// huge pages, reported as a metric.
func BenchmarkFig6_MemoryTHP(b *testing.B) {
	for _, prof := range []*leaps.Profile{leaps.ProfileX86(), leaps.ProfileARM()} {
		b.Run(prof.Name, func(b *testing.B) {
			wl, err := leaps.WorkloadByName("gemm")
			if err != nil {
				b.Fatal(err)
			}
			module, _ := wl.Build(leaps.SizeTest)
			eng, closeEng, err := leaps.NewEngine(leaps.EngineWasmtime)
			if err != nil {
				b.Fatal(err)
			}
			defer closeEng()
			cm, err := eng.Compile(module)
			if err != nil {
				b.Fatal(err)
			}
			proc := leaps.NewProcess(prof)
			defer proc.Close()
			cfg := proc.Config(leaps.Mprotect)
			var peak int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := cm.Instantiate(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := inst.Invoke("run"); err != nil {
					b.Fatal(err)
				}
				if r := proc.ResidentBytes(); r > peak {
					peak = r
				}
				inst.Close()
			}
			b.StopTimer()
			b.ReportMetric(float64(peak)/(1<<20), "resident-MiB")
		})
	}
}

// BenchmarkReplication_InterpreterGap regenerates the §4.4 Titzer
// comparison: the interpreter against the tiered JIT on PolyBench.
func BenchmarkReplication_InterpreterGap(b *testing.B) {
	for _, engine := range []string{leaps.EngineWasm3, leaps.EngineV8} {
		b.Run(engine, func(b *testing.B) {
			runIsolates(b, engine, leaps.Trap, "gemm", leaps.ProfileX86())
		})
	}
}

// BenchmarkUffdArenaPool measures the uffd mitigation in isolation:
// isolate churn with pooled arenas vs fresh mmaps.
func BenchmarkUffdArenaPool(b *testing.B) {
	for _, s := range []leaps.Strategy{leaps.Mprotect, leaps.Uffd} {
		b.Run(s.String(), func(b *testing.B) {
			runIsolates(b, leaps.EngineWasmtime, s, "atax", leaps.ProfileX86())
		})
	}
}

// benchCodegenKernel measures the optimizing engine's codegen passes
// on one kernel under the trap strategy (the paper's expensive
// software check): baseline, elision alone, and elision plus the
// register-IR recompile tier. The engine is detached from the module
// cache so each variant pays — and demonstrates — its own compile,
// and every variant's result must agree with the baseline, so the
// benchmark doubles as an equivalence check.
func benchCodegenKernel(b *testing.B, workload string) {
	wl, err := leaps.WorkloadByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	module, _ := wl.Build(leaps.SizeTest)
	variants := []struct {
		name string
		cg   core.Codegen
	}{
		{"elide=off/rir=off", core.Codegen{}},
		{"elide=on/rir=off", core.Codegen{BoundsElision: true}},
		{"elide=off/rir=on", core.Codegen{RegisterIR: true}},
		{"elide=on/rir=on", core.Codegen{BoundsElision: true, RegisterIR: true}},
	}
	sums := make([][]uint64, len(variants))
	for i, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			eng := compiled.NewWAVM()
			eng.SetCache(nil)
			eng.SetCodegen(v.cg)
			cm, err := eng.CompileModule(module)
			if err != nil {
				b.Fatal(err)
			}
			inst, err := cm.Instantiate(core.Config{Profile: isa.X86_64(), Strategy: mem.Trap}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer inst.Close()
			b.ResetTimer()
			for j := 0; j < b.N; j++ {
				res, err := inst.Invoke("run")
				if err != nil {
					b.Fatal(err)
				}
				sums[i] = res
			}
		})
	}
	for i := 1; i < len(variants); i++ {
		if sums[0] != nil && sums[i] != nil && fmt.Sprint(sums[0]) != fmt.Sprint(sums[i]) {
			b.Fatalf("%s changed the result: baseline=%v got=%v",
				variants[i].name, sums[0], sums[i])
		}
	}
}

// BenchmarkGemmCompiled and BenchmarkAtaxCompiled are the headline
// hot-path benches of the codegen passes (see BENCH_bce.json and the
// rir_runs section of BENCH_sweep.json for the committed full-size
// numbers from cmd/leapsbench -benchbce / -benchsweep).
func BenchmarkGemmCompiled(b *testing.B) { benchCodegenKernel(b, "gemm") }
func BenchmarkAtaxCompiled(b *testing.B) { benchCodegenKernel(b, "atax") }

// BenchmarkObsOverhead compares a gemm isolate-churn run with the
// observability plumbing disabled (NewProcess: traceless private
// registry, counters only) against fully enabled (shared registry
// with the default trace ring, every layer emitting events). The
// acceptance bar is <5% overhead for "enabled" over "disabled".
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, proc *leaps.Process) {
		b.Helper()
		wl, err := leaps.WorkloadByName("gemm")
		if err != nil {
			b.Fatal(err)
		}
		module, _ := wl.Build(leaps.SizeTest)
		eng, closeEng, err := leaps.NewEngine(leaps.EngineWasmtime)
		if err != nil {
			b.Fatal(err)
		}
		defer closeEng()
		cm, err := eng.Compile(module)
		if err != nil {
			b.Fatal(err)
		}
		cfg := proc.Config(leaps.Mprotect)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst, err := cm.Instantiate(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := inst.Invoke("run"); err != nil {
				b.Fatal(err)
			}
			inst.Close()
		}
	}
	b.Run("disabled", func(b *testing.B) {
		proc := leaps.NewProcess(leaps.ProfileX86())
		defer proc.Close()
		run(b, proc)
	})
	b.Run("enabled", func(b *testing.B) {
		metrics := leaps.NewMetrics()
		proc := leaps.NewObservedProcess(leaps.ProfileX86(), metrics, "proc0")
		defer proc.Close()
		run(b, proc)
	})
}
